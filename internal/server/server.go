// Package server implements pcmd, the HTTP/JSON simulation service: the
// repository's three expensive computations (trace-driven lifetime runs,
// Fig 9 Monte-Carlo failure-probability curves, compression sweeps) exposed
// as asynchronous jobs on a bounded worker pool, with a content-addressed
// LRU result cache so identical sweeps are answered instantly.
//
// Endpoints:
//
//	POST   /v1/jobs/lifetime             submit a lifetime job
//	POST   /v1/jobs/failure-probability  submit a Fig 9 Monte-Carlo job
//	POST   /v1/jobs/compression          submit a compression sweep job
//	GET    /v1/jobs/{id}                 poll a job's status, progress, and result
//	DELETE /v1/jobs/{id}                 cancel a queued or running job
//	GET    /v1/jobs                      list job summaries (?state=&limit=&offset=)
//	POST   /v1/sweeps                    submit a seed-sharded distributed sweep
//	GET    /v1/sweeps/{id}               poll a sweep's shard progress and merged result
//	GET    /v1/sweeps                    list sweep summaries
//	DELETE /v1/sweeps/{id}               cancel a running sweep
//	POST   /v1/traces                    upload a write-back trace (content-addressed)
//	GET    /v1/traces                    list stored traces
//	GET    /v1/traces/{digest}           trace metadata (?download=1 for the bytes)
//	DELETE /v1/traces/{digest}           delete a stored trace
//	GET    /v1/backends                  the coordinator's fleet view (health, load)
//	GET    /v1/fleet/status              aggregated fleet health snapshot (?watch=1 streams SSE)
//	GET    /debug/incidents              captured SLO-breach incident bundles (and /{id})
//	GET    /v1/workloads                 list the Table III workload models
//	GET    /v1/schemes                   list the hard-error schemes
//	GET    /healthz                      liveness (503 while draining)
//	GET    /metrics                      Prometheus text metrics
//
// Jobs are validated against internal/config scales, hashed (SHA-256 of
// kind + canonical JSON of the normalized parameters + seed) into the
// cache, and executed with a per-job context deadline. Jobs move
// queued -> running -> done|failed|canceled; the store is bounded (TTL +
// capacity eviction of terminal jobs) and, with a snapshot path
// configured, terminal jobs and the result cache survive restarts.
// Shutdown drains: admission stops with 503s while queued and running
// jobs finish, then the final snapshot is written.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"pcmcomp/internal/cluster"
	"pcmcomp/internal/fleetobs"
	"pcmcomp/internal/obs"
	"pcmcomp/internal/scheme"
	"pcmcomp/internal/tenant"
	"pcmcomp/internal/tracestore"
	"pcmcomp/internal/workload"
)

// Config parameterizes the service.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting jobs; a full queue rejects submissions
	// with 503 (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256; 0 keeps the
	// default, negative disables caching).
	CacheEntries int
	// JobTimeout is the per-job execution deadline (default 15 minutes).
	JobTimeout time.Duration
	// MaxJobs bounds the job store: once exceeded, terminal jobs are
	// evicted oldest-finished-first (default 4096). Evicted results stay
	// reachable through the cache under their content address.
	MaxJobs int
	// JobTTL is how long a terminal job's handle stays pollable after it
	// finishes (default 1 hour).
	JobTTL time.Duration
	// SnapshotPath, when non-empty, enables crash-safe persistence: the
	// terminal jobs and result cache are restored from this file on
	// startup and written back periodically and on shutdown.
	SnapshotPath string
	// SnapshotInterval is the cadence of periodic snapshots (default 1
	// minute; only meaningful with SnapshotPath set).
	SnapshotInterval time.Duration
	// Peers lists the base URLs of remote pcmd backends for coordinator
	// mode: POST /v1/sweeps shards work across them. Empty means local
	// mode — sweeps run on an in-process loopback backend, so a peerless
	// pcmd degrades gracefully to single-node execution.
	Peers []string
	// SweepRetries bounds per-shard re-dispatches (default 2).
	SweepRetries int
	// SweepHedgeAfter is the straggler-shard hedging delay: a shard still
	// running after this long is duplicated on a second backend and the
	// first result wins (default 30s with peers; negative disables;
	// ignored in local mode, where there is no second backend).
	SweepHedgeAfter time.Duration
	// HealthInterval is the peer health-probe cadence (default 15s; only
	// meaningful with peers).
	HealthInterval time.Duration
	// Logger receives the service's structured logs (access lines, job
	// lifecycle, shard scheduling). Nil discards them, keeping tests and
	// embedded uses quiet.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default — profiles expose internals, so exposure is an explicit
	// operator decision).
	EnablePprof bool
	// TraceRingSize bounds the in-memory ring of completed traces behind
	// /debug/traces (default obs.DefaultMaxTraces).
	TraceRingSize int
	// Tenants is the multi-tenant front door's registry: API keys, per
	// tenant token-bucket submission quotas, and fair-queueing weights.
	// Nil builds a registry with only the unlimited anonymous tenant, so
	// a keyless deployment behaves exactly as before multi-tenancy
	// existed.
	Tenants *tenant.Registry
	// SSEHeartbeat is the idle-comment cadence on streaming /events
	// responses, keeping proxies from reaping quiet connections (default
	// 15s; negative disables).
	SSEHeartbeat time.Duration
	// TraceDir is the trace store's spool directory; empty keeps uploaded
	// traces in memory only (they vanish on restart).
	TraceDir string
	// TraceMaxBytes bounds the trace store's total canonical bytes
	// (default 1 GiB); TraceTTL evicts traces unused for that long
	// (default 7 days, negative disables).
	TraceMaxBytes int64
	TraceTTL      time.Duration
	// TraceByteRate/TraceByteBurst, when rate > 0, impose a per-tenant
	// upload byte quota (bytes/sec refill, burst bucket depth) on every
	// registry tenant, anonymous included.
	TraceByteRate  float64
	TraceByteBurst float64
	// AdvertiseURL is this coordinator's own base URL as backends can
	// reach it (e.g. "http://coord:8080"). Sweep shards dispatched to HTTP
	// backends carry it as X-Trace-Source, so a backend missing a trace
	// digest knows where to fetch it from.
	AdvertiseURL string
	// ScrapeInterval is the fleet health plane's scrape cadence: this
	// server periodically reads its own /metrics (in-process) plus every
	// peer's, folding the samples into GET /v1/fleet/status (default 5s;
	// negative disables the plane entirely).
	ScrapeInterval time.Duration
	// SLOs are the objectives the plane evaluates with multi-window burn
	// rates; a breach captures an incident. Parse specs with
	// fleetobs.ParseSLOs. Empty means no SLO evaluation (the snapshot
	// still rolls).
	SLOs []fleetobs.Objective
	// SLOWindows are the burn-rate evaluation windows, ascending (empty
	// selects the plane's default 1m and 5m). The shortest window is also
	// the fleet snapshot's display window.
	SLOWindows []time.Duration
	// MaxIncidents bounds the /debug/incidents ring (default 8).
	MaxIncidents int
	// IncidentCPUProfile sizes the CPU profile captured per incident
	// (default 5s; negative disables CPU profiling).
	IncidentCPUProfile time.Duration
	// LogSampleQPS rate-limits per-route access-log lines to this many
	// per second (token bucket per route). 0 logs everything; error
	// responses (status >= 400) always log regardless.
	LogSampleQPS float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.JobTTL <= 0 {
		c.JobTTL = time.Hour
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = time.Minute
	}
	if c.SweepRetries <= 0 {
		c.SweepRetries = 2
	}
	switch {
	case c.SweepHedgeAfter == 0:
		c.SweepHedgeAfter = 30 * time.Second
	case c.SweepHedgeAfter < 0:
		c.SweepHedgeAfter = 0 // disabled
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 15 * time.Second
	}
	if c.Tenants == nil {
		// Only the error paths are tenant validation; with no tenants
		// there is nothing to invalidate.
		c.Tenants, _ = tenant.NewRegistry(nil, 0, 0)
	}
	switch {
	case c.SSEHeartbeat == 0:
		c.SSEHeartbeat = 15 * time.Second
	case c.SSEHeartbeat < 0:
		c.SSEHeartbeat = 0 // disabled
	}
	return c
}

// Server is the pcmd service: an http.Handler plus the pool, store, cache
// and metrics behind it. Create with New, serve with any http.Server, stop
// with Shutdown.
type Server struct {
	cfg        Config
	store      *store
	cache      *resultCache
	metrics    *metrics
	pool       *pool
	mux        *http.ServeMux
	jobCtx     context.Context
	cancelJobs context.CancelFunc
	drain      chan struct{} // closed when draining begins
	hkStop     chan struct{} // closed to stop the housekeeping loop
	hkDone     chan struct{} // closed when the housekeeping loop exits
	restoreErr error         // startup snapshot problem, if any

	log     *slog.Logger // structured log sink (never nil; nop by default)
	ring    *obs.Ring    // completed-trace ring behind /debug/traces
	started time.Time    // process start, for the uptime gauge
	tenants *tenant.Registry
	traces  *tracestore.Store // content-addressed uploaded traces

	// Distributed-sweep coordinator (see internal/cluster): remote peers
	// in coordinator mode, an in-process loopback backend otherwise.
	coord      *cluster.Coordinator
	sweeps     *sweepStore
	sweepWG    sync.WaitGroup     // running sweep goroutines, for drain
	stopHealth context.CancelFunc // stops the peer health-probe loop

	// Fleet health plane (see internal/fleetobs): the scrape loop behind
	// GET /v1/fleet/status and /debug/incidents. Nil when disabled.
	fleet *fleetobs.Plane
	// logSample throttles per-route access logging; nil logs everything.
	logSample *logSampler
}

// New builds the service and starts its worker pool. When a snapshot path
// is configured, the previous run's terminal jobs and result cache are
// restored before the first request is served; a corrupt or
// version-mismatched snapshot is refused and reported by RestoreError.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newStore(cfg.MaxJobs, cfg.JobTTL),
		cache:   newResultCache(cfg.CacheEntries),
		metrics: newMetrics(),
		drain:   make(chan struct{}),
		hkStop:  make(chan struct{}),
		hkDone:  make(chan struct{}),
		log:     cfg.Logger,
		ring:    obs.NewRing(cfg.TraceRingSize),
		started: time.Now(),
		tenants: cfg.Tenants,
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	s.sweeps = newSweepStore()
	s.restoreErr = s.loadSnapshot()
	traces, err := tracestore.Open(tracestore.Options{
		Dir: cfg.TraceDir, MaxBytes: cfg.TraceMaxBytes, TTL: cfg.TraceTTL,
	})
	if err != nil {
		// A broken spool directory must not keep the service down: fall
		// back to memory-only and surface the problem via RestoreError.
		traces, _ = tracestore.Open(tracestore.Options{
			MaxBytes: cfg.TraceMaxBytes, TTL: cfg.TraceTTL,
		})
		s.restoreErr = errors.Join(s.restoreErr, err)
	}
	s.traces = traces
	if cfg.TraceByteRate > 0 {
		for _, tn := range s.tenants.Tenants() {
			tn.SetByteQuota(cfg.TraceByteRate, cfg.TraceByteBurst)
		}
	}
	// Workers and sweep goroutines inherit the ring and logger through
	// jobCtx, so spans they start record into /debug/traces and their logs
	// carry through even off the request path.
	s.jobCtx, s.cancelJobs = context.WithCancel(
		obs.WithLogger(obs.WithRing(context.Background(), s.ring), s.log))
	s.logSample = newLogSampler(cfg.LogSampleQPS)
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.execute, s.jobPanicked)
	s.initCoordinator()
	s.initFleet()
	go s.housekeeping()

	mux := http.NewServeMux()
	s.route(mux, "POST /v1/jobs/lifetime", s.submitHandler(KindLifetime))
	s.route(mux, "POST /v1/jobs/failure-probability", s.submitHandler(KindFailureProbability))
	s.route(mux, "POST /v1/jobs/compression", s.submitHandler(KindCompression))
	s.route(mux, "POST /v1/jobs:batch", s.handleSubmitBatch)
	s.route(mux, "GET /v1/jobs/{id}", s.handleGetJob)
	s.route(mux, "GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.route(mux, "DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.route(mux, "GET /v1/jobs", s.handleListJobs)
	s.route(mux, "POST /v1/sweeps", s.handleSubmitSweep)
	s.route(mux, "GET /v1/sweeps", s.handleListSweeps)
	s.route(mux, "GET /v1/sweeps/{id}", s.handleGetSweep)
	s.route(mux, "GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.route(mux, "DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	s.route(mux, "POST /v1/traces", s.handleUploadTrace)
	s.route(mux, "GET /v1/traces", s.handleListDataTraces)
	s.route(mux, "GET /v1/traces/{digest}", s.handleGetDataTrace)
	s.route(mux, "DELETE /v1/traces/{digest}", s.handleDeleteDataTrace)
	s.route(mux, "GET /v1/backends", s.handleBackends)
	s.route(mux, "GET /v1/fleet/status", s.handleFleetStatus)
	s.route(mux, "GET /debug/incidents", s.handleIncidents)
	s.route(mux, "GET /debug/incidents/{id}", s.handleIncident)
	s.route(mux, "GET /v1/workloads", s.handleWorkloads)
	s.route(mux, "GET /v1/schemes", s.handleSchemes)
	s.route(mux, "GET /healthz", s.handleHealthz)
	s.route(mux, "GET /metrics", s.handleMetrics)
	s.route(mux, "GET /debug/traces", s.handleListTraces)
	s.route(mux, "GET /debug/traces/{id}", s.handleGetTrace)
	if cfg.EnablePprof {
		// Raw registrations: the pprof handlers manage their own routing
		// under the prefix, and profile downloads would only skew the
		// request-latency histograms.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// initCoordinator builds the sweep coordinator: HTTP backends for the
// configured peers, or an in-process loopback running ExecuteLocal when
// there are none. With peers, a health loop probes the fleet so a dead
// backend is sidelined between sweeps.
func (s *Server) initCoordinator() {
	var backends []cluster.Backend
	hedge := s.cfg.SweepHedgeAfter
	if len(s.cfg.Peers) > 0 {
		for _, peer := range s.cfg.Peers {
			b := cluster.NewHTTPBackend(peer, 1)
			// Shards dispatched over HTTP advertise this coordinator as the
			// place to fetch trace digests the backend has never seen.
			b.Client.TraceSource = s.cfg.AdvertiseURL
			backends = append(backends, b)
		}
	} else {
		backends = append(backends, cluster.NewLoopback("local", 1,
			func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
				// The loopback runs in-process: trace digests resolve straight
				// from this server's own store.
				return ExecuteLocal(tracestore.WithResolver(ctx, s.traces), Kind(kind), params)
			}))
		hedge = 0 // one backend: nothing to hedge onto
	}
	coord, err := cluster.New(backends, cluster.Options{
		MaxRetries:   s.cfg.SweepRetries,
		ShardTimeout: s.cfg.JobTimeout,
		HedgeAfter:   hedge,
		Concurrency:  max(s.cfg.Workers, 2*len(backends)),
	})
	if err != nil {
		panic(err) // unreachable: backends is never empty
	}
	s.coord = coord
	hctx, cancel := context.WithCancel(context.Background())
	s.stopHealth = cancel
	if len(s.cfg.Peers) > 0 {
		go s.coord.HealthLoop(hctx, s.cfg.HealthInterval)
	}
}

// RestoreError reports what went wrong restoring the startup snapshot, or
// nil if there was no snapshot or it loaded cleanly. The server is usable
// either way — a refused snapshot just means an empty store.
func (s *Server) RestoreError() error { return s.restoreErr }

// housekeeping is the background loop behind the store bounds and the
// snapshot cadence: every tick it TTL-sweeps terminal jobs and, when
// persistence is on, writes a snapshot. It exits when Shutdown begins
// (Shutdown writes the final snapshot itself, after the drain).
func (s *Server) housekeeping() {
	defer close(s.hkDone)
	// Sweep often enough that a TTL expiry is observed promptly even when
	// the TTL is much shorter than the snapshot interval (tests use
	// millisecond TTLs).
	interval := s.cfg.SnapshotInterval
	if s.cfg.JobTTL/4 < interval {
		interval = s.cfg.JobTTL / 4
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-s.hkStop:
			return
		case now := <-ticker.C:
			s.store.sweep(now)
			s.traces.Sweep(now)
			if s.cfg.SnapshotPath != "" && now.Sub(last) >= s.cfg.SnapshotInterval {
				last = now
				_ = s.SaveSnapshot() // a failed periodic write retries next tick
			}
		}
	}
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// Shutdown drains the service: new submissions are rejected with 503,
// queued and running jobs finish, and the call returns once the pool is
// idle and the final snapshot (when configured) is on disk. If the
// context expires first, running jobs are cancelled through their
// contexts and Shutdown waits for them to unwind before returning the
// context's error — the snapshot is still written, capturing everything
// that finished. Idempotent is not required — call once.
func (s *Server) Shutdown(ctx context.Context) error {
	close(s.drain)
	close(s.hkStop)
	s.stopHealth()
	if s.fleet != nil {
		// Stop scraping before the drain: the plane waits out its loop and
		// any in-flight incident capture, so nothing touches the pool or
		// coordinator after they unwind.
		s.fleet.Close()
	}
	s.pool.Close()
	drainErr := s.pool.Wait(ctx)
	if drainErr == nil {
		drainErr = s.waitSweeps(ctx)
	}
	if drainErr != nil {
		s.cancelJobs()
		_ = s.pool.Wait(context.Background())
		s.sweepWG.Wait()
	}
	<-s.hkDone
	if err := s.SaveSnapshot(); err != nil && drainErr == nil {
		return err
	}
	return drainErr
}

// waitSweeps blocks until every sweep goroutine has finished or the
// context expires. Sweeps drain like jobs: submissions already stopped, so
// the wait is bounded by the shards in flight.
func (s *Server) waitSweeps(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.sweepWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// execute runs one job on a pool worker under the per-job deadline. The
// job's context is cancelable two ways — the deadline (timeout -> failed)
// and DELETE /v1/jobs/{id} (errJobCanceled cause -> canceled) — and both
// unwind through the simulation's own context polls (lifetime.RunContext
// checks every CheckEvery writes, montecarlo every few thousand trials),
// so a canceled job frees its worker mid-run.
func (s *Server) execute(j *Job) {
	start := time.Now()
	tctx, cancelTimeout := context.WithTimeout(s.jobCtx, s.cfg.JobTimeout)
	defer cancelTimeout()
	ctx, cancelCause := context.WithCancelCause(tctx)
	defer cancelCause(nil)

	if !s.store.claimRunning(j, cancelCause, start) {
		// Canceled while queued: skip without running.
		s.metrics.jobSkipped(j.Kind)
		return
	}
	s.metrics.jobStarted()

	// The execution span joins the job's trace: a child of the submitter's
	// span when the submission carried propagation headers, else the root
	// of the trace minted at submission. Its data is attached to the
	// terminal job document so a remote caller can graft it into its tree.
	ctx = obs.WithRemoteParent(ctx, obs.SpanContext{TraceID: j.TraceID, SpanID: j.parent.SpanID})
	ctx, span := obs.Start(ctx, "job.run")
	span.SetAttr("job_id", j.ID)
	span.SetAttr("kind", string(j.Kind))
	jobLog := s.log.With("job_id", j.ID, "kind", string(j.Kind), "trace_id", j.TraceID)
	ctx = obs.WithLogger(ctx, jobLog)
	// Trace-driven jobs resolve their digest through the local store,
	// falling back to a fetch from the submitter's advertised coordinator.
	ctx = tracestore.WithResolver(ctx, s.resolverFor(j.traceSource))
	endSpan := func(err error) []obs.SpanData {
		if span == nil {
			return nil
		}
		span.SetError(err)
		span.End()
		return []obs.SpanData{span.Data()}
	}
	jobLog.Info("job started")

	result, err := j.run.run(ctx, j.progress)
	finished := time.Now()
	var buf json.RawMessage
	if err == nil {
		buf, err = json.Marshal(result)
	}
	if err != nil {
		if errors.Is(context.Cause(ctx), errJobCanceled) {
			s.store.setCanceled(j, endSpan(context.Cause(ctx)), finished)
			s.metrics.jobFinished(j.Kind, outcomeCanceled, finished.Sub(start), j.TraceID)
			jobLog.Info("job canceled", "elapsed", finished.Sub(start))
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("job exceeded the %s execution deadline", s.cfg.JobTimeout)
		}
		s.store.setFailed(j, err, endSpan(err), finished)
		s.metrics.jobFinished(j.Kind, outcomeFailed, finished.Sub(start), j.TraceID)
		jobLog.Warn("job failed", "err", err, "elapsed", finished.Sub(start))
		return
	}
	s.cache.Put(j.CacheKey, buf)
	s.store.setDone(j, buf, endSpan(nil), finished)
	s.metrics.jobFinished(j.Kind, outcomeDone, finished.Sub(start), j.TraceID)
	s.metrics.jobSchemesDone(j.Kind, schemeLabelsOf(j.run))
	jobLog.Info("job done", "elapsed", finished.Sub(start))
}

// jobPanicked is the pool's recovery callback: a panic escaped a job's
// exec, the worker survived, and the job must land failed with the panic
// cause. The metrics move matches the job's prior lifecycle state so the
// queued/running gauges stay balanced; a panic after a normal terminal
// transition (already counted) only moves the panic counter.
func (s *Server) jobPanicked(j *Job, cause any) {
	now := time.Now()
	prior, transitioned := s.store.failPanicked(j, cause, now)
	if !transitioned {
		prior = "" // already accounted; only count the panic itself
	}
	var elapsed time.Duration
	if j.Started != nil {
		elapsed = now.Sub(*j.Started)
	}
	s.metrics.jobPanicked(j.Kind, prior, elapsed)
	s.log.Error("panic in job execution; worker recovered",
		"job_id", j.ID, "kind", string(j.Kind), "panic", fmt.Sprint(cause))
}

// retrySeconds rounds a bucket's refill hint up to whole Retry-After
// seconds, at least 1.
func retrySeconds(hint time.Duration) int {
	secs := int(hint / time.Second)
	if hint%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return secs
}

// throttle refuses a rate-limited submission with 429 and a Retry-After
// hint derived from the tenant's bucket (whole seconds, at least 1).
func (s *Server) throttle(w http.ResponseWriter, tn *tenant.Tenant, hint time.Duration) {
	s.metrics.tenantThrottled(tn.Name)
	secs := retrySeconds(hint)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests,
		fmt.Sprintf("tenant %q submission quota exhausted, retry in %ds", tn.Name, secs))
}

// submitHandler builds the POST handler for one job kind.
func (s *Server) submitHandler(kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		p := paramsFor[kind]()
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(p); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if err := p.normalize(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		key, err := cacheKey(kind, p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		now := time.Now()
		tn := s.tenantFrom(r)
		// The quota charges every valid submission — cache hits included —
		// because admission control protects the front door, not just the
		// workers.
		if hint, ok := tn.Take(now, 1); !ok {
			s.throttle(w, tn, hint)
			return
		}
		s.metrics.tenantSubmitted(tn.Name)
		j := s.store.add(kind, p, key, tn, now)
		if src := r.Header.Get("X-Trace-Source"); src != "" && j.TraceDigest != "" {
			// A coordinator dispatched this shard: remember where to fetch
			// the trace if the local store does not hold it.
			s.store.setTraceSource(j, src)
		}
		if rp := obs.RemoteParent(r.Context()); rp.TraceID != "" {
			// The submitter propagated a trace (a coordinator's dispatch
			// span); this job's execution joins it instead of rooting its own.
			s.store.adoptTrace(j, rp)
		}
		if cached, ok := s.cache.Get(key); ok {
			s.store.finishCached(j, cached, now)
			s.metrics.cacheHit()
			snap, _ := s.store.get(j.ID)
			writeJSON(w, http.StatusOK, snap)
			return
		}
		s.metrics.cacheMiss()
		switch res := s.pool.Submit(j); res {
		case submitQueueFull:
			// Transient: the client should back off and retry.
			s.store.setFailed(j, errors.New("job queue full"), nil, now)
			s.metrics.jobRejected(res)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "job queue full, retry later")
			return
		case submitClosed:
			// Terminal for this process: the pool is draining for shutdown.
			s.store.setFailed(j, errors.New("server is draining"), nil, now)
			s.metrics.jobRejected(res)
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.metrics.jobQueued()
		obs.Logger(r.Context()).Info("job accepted", "job_id", j.ID, "kind", string(kind), "job_trace_id", j.TraceID)
		snap, _ := s.store.get(j.ID)
		writeJSON(w, http.StatusAccepted, snap)
	}
}

// handleCancelJob implements DELETE /v1/jobs/{id}. A queued job flips to
// canceled immediately (200); a running job gets its context canceled and
// the response is 202 — the state transition lands when the simulation
// unwinds, within one context-poll interval. Canceling an already-terminal
// job is a 409.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	snap, outcome := s.store.cancel(r.PathValue("id"), time.Now())
	switch outcome {
	case cancelUnknown:
		writeError(w, http.StatusNotFound, "no such job")
	case cancelQueued:
		// Accounting happens when the worker dequeues and skips it
		// (metrics.jobSkipped), so the canceled counter moves once.
		writeJSON(w, http.StatusOK, snap)
	case cancelRunning:
		writeJSON(w, http.StatusAccepted, snap)
	default:
		writeError(w, http.StatusConflict,
			fmt.Sprintf("job is already %s", snap.State))
	}
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// jobSummary is the list view of a job (no params or result payload).
type jobSummary struct {
	ID       string     `json:"id"`
	Kind     Kind       `json:"kind"`
	State    State      `json:"state"`
	CacheHit bool       `json:"cache_hit"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	TraceID  string     `json:"trace_id,omitempty"`
	// TraceDigest is the data trace a trace-driven job replays.
	TraceDigest string `json:"trace_digest,omitempty"`
}

// Listing pagination bounds.
const (
	listDefaultLimit = 100
	listMaxLimit     = 1000
)

// handleListJobs implements GET /v1/jobs?state=&limit=&offset=: job
// summaries in creation order (oldest first), optionally filtered to one
// lifecycle state, paginated by limit/offset. The response carries the
// filtered total and, when more pages remain, the next offset — the
// coordinator and operators page through running jobs without pulling
// every result payload.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stateFilter := State(q.Get("state"))
	switch stateFilter {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown state %q (want queued, running, done, failed, or canceled)", stateFilter))
		return
	}
	limit, err := queryInt(q.Get("limit"), listDefaultLimit)
	if err != nil || limit < 1 {
		writeError(w, http.StatusBadRequest, "limit must be a positive integer")
		return
	}
	if limit > listMaxLimit {
		limit = listMaxLimit
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, "offset must be a non-negative integer")
		return
	}

	jobs := s.store.list()
	// Creation order: the store map is unordered, but IDs embed the
	// creation sequence; Created-then-ID sorting keeps restored jobs (which
	// kept their original IDs) stable too.
	sort.Slice(jobs, func(i, k int) bool {
		if !jobs[i].Created.Equal(jobs[k].Created) {
			return jobs[i].Created.Before(jobs[k].Created)
		}
		return jobs[i].ID < jobs[k].ID
	})
	filtered := jobs[:0]
	for _, j := range jobs {
		if stateFilter == "" || j.State == stateFilter {
			filtered = append(filtered, j)
		}
	}

	total := len(filtered)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	out := make([]jobSummary, 0, end-offset)
	for _, j := range filtered[offset:end] {
		out = append(out, jobSummary{
			ID: j.ID, Kind: j.Kind, State: j.State, CacheHit: j.CacheHit,
			Created: j.Created, Finished: j.Finished, Error: j.Error,
			TraceID: j.TraceID, TraceDigest: j.TraceDigest,
		})
	}
	resp := map[string]any{"jobs": out, "total": total, "offset": offset}
	if end < total {
		resp["next_offset"] = end
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryInt parses an optional integer query parameter.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	type wl struct {
		Name  string  `json:"name"`
		WPKI  float64 `json:"wpki"`
		CR    float64 `json:"cr"`
		Class string  `json:"class"`
	}
	profiles := workload.Profiles()
	out := make([]wl, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, wl{Name: p.Name, WPKI: p.WPKI, CR: p.CR, Class: p.Class.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

// handleSchemes implements GET /v1/schemes: the legacy hard-error scheme
// list (the Fig 9 Monte-Carlo names), plus the full composition registry —
// codecs, ECCs, write encoders, wear policies, and the four paper presets
// with their canonical specs — so clients can discover what a "schemes"
// spec may compose.
func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	type mcScheme struct {
		Name        string `json:"name"`
		FullName    string `json:"full_name"`
		Description string `json:"description"`
		MonteCarlo  bool   `json:"monte_carlo"`
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schemes": []mcScheme{
			{"ecp", "ECP-6", "error-correcting pointers, 6 per 512-bit line (paper baseline)", true},
			{"safer", "SAFER-32", "dynamic partitioning into 32 groups with inversion", true},
			{"aegis", "Aegis-17x31", "17x31 grid-based group formation", true},
			{"secded", "SECDED-72/64", "(72,64) Hsiao code the paper argues against (§II-C)", false},
		},
		"codecs":        scheme.Codecs(),
		"eccs":          scheme.ECCs(),
		"encoders":      scheme.Encoders(),
		"wear_policies": scheme.WearPolicies(),
		"presets":       scheme.Presets(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.renderMetrics(w)
}

// renderMetrics writes the full Prometheus exposition. It is the body of
// GET /metrics and also the fleet health plane's self-scrape path (an
// in-process fetch, no HTTP round trip).
func (s *Server) renderMetrics(w io.Writer) {
	now := time.Now()
	depths := s.pool.Depths()
	quotas := make([]tenantQuota, 0, len(depths))
	for _, tn := range s.tenants.Tenants() {
		q := tenantQuota{name: tn.Name, depth: depths[tn.Name]}
		delete(depths, tn.Name)
		q.tokens, q.limited = tn.TokenLevel(now)
		quotas = append(quotas, q)
	}
	// Tenants the queue has seen but the registry does not know (jobs
	// enqueued by embedders/tests) still get a depth gauge.
	leftover := make([]string, 0, len(depths))
	for name := range depths {
		leftover = append(leftover, name)
	}
	sort.Strings(leftover)
	for _, name := range leftover {
		quotas = append(quotas, tenantQuota{name: name, depth: depths[name]})
	}
	s.metrics.WriteTo(w, runtimeStats{
		cacheLen:   s.cache.Len(),
		storeLen:   s.store.size(),
		evicted:    s.store.evictedCount(),
		goroutines: runtime.NumGoroutine(),
		uptime:     time.Since(s.started),
		tenants:    quotas,
		traces:     s.traces.Stats(),
	})
	writeClusterMetrics(w, s.coord.Metrics(), s.coord.Backends())
	if s.fleet != nil {
		writeFleetMetrics(w, s.fleet.Stats())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but note it on the connection.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
