// Package server implements pcmd, the HTTP/JSON simulation service: the
// repository's three expensive computations (trace-driven lifetime runs,
// Fig 9 Monte-Carlo failure-probability curves, compression sweeps) exposed
// as asynchronous jobs on a bounded worker pool, with a content-addressed
// LRU result cache so identical sweeps are answered instantly.
//
// Endpoints:
//
//	POST /v1/jobs/lifetime             submit a lifetime job
//	POST /v1/jobs/failure-probability  submit a Fig 9 Monte-Carlo job
//	POST /v1/jobs/compression          submit a compression sweep job
//	GET  /v1/jobs/{id}                 poll a job's status and result
//	GET  /v1/jobs                      list job summaries
//	GET  /v1/workloads                 list the Table III workload models
//	GET  /v1/schemes                   list the hard-error schemes
//	GET  /healthz                      liveness (503 while draining)
//	GET  /metrics                      Prometheus text metrics
//
// Jobs are validated against internal/config scales, hashed (SHA-256 of
// kind + canonical JSON of the normalized parameters + seed) into the
// cache, and executed with a per-job context deadline. Shutdown drains:
// admission stops with 503s while queued and running jobs finish.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"pcmcomp/internal/workload"
)

// Config parameterizes the service.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting jobs; a full queue rejects submissions
	// with 503 (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256; 0 keeps the
	// default, negative disables caching).
	CacheEntries int
	// JobTimeout is the per-job execution deadline (default 15 minutes).
	JobTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	return c
}

// Server is the pcmd service: an http.Handler plus the pool, store, cache
// and metrics behind it. Create with New, serve with any http.Server, stop
// with Shutdown.
type Server struct {
	cfg        Config
	store      *store
	cache      *resultCache
	metrics    *metrics
	pool       *pool
	mux        *http.ServeMux
	jobCtx     context.Context
	cancelJobs context.CancelFunc
	drain      chan struct{} // closed when draining begins
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newStore(),
		cache:   newResultCache(cfg.CacheEntries),
		metrics: newMetrics(),
		drain:   make(chan struct{}),
	}
	s.jobCtx, s.cancelJobs = context.WithCancel(context.Background())
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.execute)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs/lifetime", s.submitHandler(KindLifetime,
		func() params { return &LifetimeParams{} }))
	mux.HandleFunc("POST /v1/jobs/failure-probability", s.submitHandler(KindFailureProbability,
		func() params { return &FailureProbabilityParams{} }))
	mux.HandleFunc("POST /v1/jobs/compression", s.submitHandler(KindCompression,
		func() params { return &CompressionParams{} }))
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// Shutdown drains the service: new submissions are rejected with 503,
// queued and running jobs finish, and the call returns once the pool is
// idle. If the context expires first, running jobs are cancelled through
// their contexts and Shutdown waits for them to unwind before returning
// the context's error. Idempotent is not required — call once.
func (s *Server) Shutdown(ctx context.Context) error {
	close(s.drain)
	s.pool.Close()
	if err := s.pool.Wait(ctx); err != nil {
		s.cancelJobs()
		_ = s.pool.Wait(context.Background())
		return err
	}
	return nil
}

// execute runs one job on a pool worker under the per-job deadline.
func (s *Server) execute(j *Job) {
	start := time.Now()
	s.store.setRunning(j, start)
	s.metrics.jobStarted()
	ctx, cancel := context.WithTimeout(s.jobCtx, s.cfg.JobTimeout)
	defer cancel()

	result, err := j.run.run(ctx)
	finished := time.Now()
	var buf json.RawMessage
	if err == nil {
		buf, err = json.Marshal(result)
	}
	if err != nil {
		s.store.setFailed(j, err, finished)
		s.metrics.jobFinished(j.Kind, false, finished.Sub(start))
		return
	}
	s.cache.Put(j.CacheKey, buf)
	s.store.setDone(j, buf, finished)
	s.metrics.jobFinished(j.Kind, true, finished.Sub(start))
}

// submitHandler builds the POST handler for one job kind.
func (s *Server) submitHandler(kind Kind, newParams func() params) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		p := newParams()
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(p); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if err := p.normalize(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		key, err := cacheKey(kind, p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		now := time.Now()
		j := s.store.add(kind, p, key, now)
		if cached, ok := s.cache.Get(key); ok {
			s.store.finishCached(j, cached, now)
			s.metrics.cacheHit()
			snap, _ := s.store.get(j.ID)
			writeJSON(w, http.StatusOK, snap)
			return
		}
		if !s.pool.Submit(j) {
			s.store.setFailed(j, errors.New("job queue full"), now)
			writeError(w, http.StatusServiceUnavailable, "job queue full, retry later")
			return
		}
		s.metrics.jobQueued()
		snap, _ := s.store.get(j.ID)
		writeJSON(w, http.StatusAccepted, snap)
	}
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// jobSummary is the list view of a job (no params or result payload).
type jobSummary struct {
	ID       string     `json:"id"`
	Kind     Kind       `json:"kind"`
	State    State      `json:"state"`
	CacheHit bool       `json:"cache_hit"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.store.list()
	out := make([]jobSummary, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobSummary{
			ID: j.ID, Kind: j.Kind, State: j.State, CacheHit: j.CacheHit,
			Created: j.Created, Finished: j.Finished, Error: j.Error,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	type wl struct {
		Name  string  `json:"name"`
		WPKI  float64 `json:"wpki"`
		CR    float64 `json:"cr"`
		Class string  `json:"class"`
	}
	profiles := workload.Profiles()
	out := make([]wl, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, wl{Name: p.Name, WPKI: p.WPKI, CR: p.CR, Class: p.Class.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	type scheme struct {
		Name        string `json:"name"`
		FullName    string `json:"full_name"`
		Description string `json:"description"`
		MonteCarlo  bool   `json:"monte_carlo"`
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemes": []scheme{
		{"ecp", "ECP-6", "error-correcting pointers, 6 per 512-bit line (paper baseline)", true},
		{"safer", "SAFER-32", "dynamic partitioning into 32 groups with inversion", true},
		{"aegis", "Aegis-17x31", "17x31 grid-based group formation", true},
		{"secded", "SECDED-72/64", "(72,64) Hsiao code the paper argues against (§II-C)", false},
	}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s.cache.Len())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but note it on the connection.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
