package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pcmcomp/internal/obs"
)

// collectEvents fetches a flight-recorder timeline and returns the event
// types in order.
func collectEvents(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var doc struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	types := make([]string, len(doc.Events))
	for i, ev := range doc.Events {
		types[i] = ev.Type
	}
	return types
}

func countType(types []string, want string) int {
	n := 0
	for _, ty := range types {
		if ty == want {
			n++
		}
	}
	return n
}

// TestSweepTracePropagatesAcrossBackends is the observability e2e: a
// coordinator pcmd shards a sweep across two real backend daemons and the
// coordinator's trace ring must hold ONE trace whose span tree stitches
// all three processes together — the sweep span, a shard span per seed,
// a dispatch span per attempt, and under each dispatch the job.run span
// that the remote backend executed and reported back in its job document.
func TestSweepTracePropagatesAcrossBackends(t *testing.T) {
	var backendURLs []string
	var backendServers []*Server
	for i := 0; i < 2; i++ {
		b := New(Config{Workers: 2, QueueDepth: 32, JobTimeout: time.Minute, CacheEntries: -1})
		ts := httptest.NewServer(b)
		t.Cleanup(ts.Close)
		backendURLs = append(backendURLs, ts.URL)
		backendServers = append(backendServers, b)
	}
	coord := New(Config{
		Workers: 2, QueueDepth: 16, JobTimeout: time.Minute, CacheEntries: -1,
		Peers: backendURLs,
	})
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)

	// Two shards, both dispatched concurrently at sweep start: the
	// least-loaded picker sends one to each backend. ~150k trials keeps a
	// shard in flight long enough that neither finishes before the other
	// is picked.
	body := `{"kind":"failure-probability","params":{"scheme":"ecp","window":16,"max_errors":8,"trials":150000},"seed_count":2}`
	doc, code := postSweep(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%+v)", code, doc)
	}
	if doc.TraceID == "" {
		t.Fatal("202 sweep document carries no trace_id")
	}
	done := pollSweep(t, ts, doc.ID)
	if done.State != StateDone {
		t.Fatalf("sweep finished %s: %s", done.State, done.Error)
	}
	if done.TraceID != doc.TraceID {
		t.Fatalf("trace_id changed across polls: %s then %s", doc.TraceID, done.TraceID)
	}

	// The ring lists the trace.
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
		Count  int                `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, tr := range listing.Traces {
		if tr.TraceID == doc.TraceID {
			found = true
			if tr.Root != "sweep" {
				t.Errorf("trace root = %q, want sweep", tr.Root)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s absent from /debug/traces (%d retained)", doc.TraceID, listing.Count)
	}

	// The span tree: sweep -> 2x shard -> dispatch -> job.run, with the
	// job.run spans contributed by the REMOTE backends.
	resp, err = http.Get(ts.URL + "/debug/traces/" + doc.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: %d", doc.TraceID, resp.StatusCode)
	}
	var traceDoc struct {
		TraceID string          `json:"trace_id"`
		Spans   int             `json:"spans"`
		Tree    []*obs.SpanNode `json:"tree"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traceDoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(traceDoc.Tree) != 1 || traceDoc.Tree[0].Name != "sweep" {
		t.Fatalf("trace tree roots = %+v, want single sweep root", traceDoc.Tree)
	}
	shards, dispatches, runs := 0, 0, 0
	dispatchBackends := map[string]bool{}
	obs.Walk(traceDoc.Tree, func(n *obs.SpanNode, depth int) {
		if n.TraceID != doc.TraceID {
			t.Errorf("span %s carries trace %s, want %s", n.Name, n.TraceID, doc.TraceID)
		}
		switch n.Name {
		case "shard":
			shards++
		case "dispatch":
			dispatches++
			dispatchBackends[n.Attrs["backend"]] = true
			if len(n.Children) != 1 || n.Children[0].Name != "job.run" {
				t.Errorf("dispatch span children = %+v, want one remote job.run", n.Children)
			}
		case "job.run":
			runs++
		}
	})
	if shards != 2 || dispatches != 2 || runs != 2 {
		t.Fatalf("span tree: %d shard, %d dispatch, %d job.run spans, want 2 of each", shards, dispatches, runs)
	}
	if len(dispatchBackends) != 2 {
		t.Errorf("dispatch spans name %d distinct backends (%v), want both", len(dispatchBackends), dispatchBackends)
	}

	// The sweep's flight recorder shows the scheduling timeline.
	types := collectEvents(t, ts.URL+"/v1/sweeps/"+doc.ID+"/events")
	for _, want := range []string{"created", "started", "merged", "done"} {
		if countType(types, want) != 1 {
			t.Errorf("sweep timeline %v: want exactly one %q event", types, want)
		}
	}
	if countType(types, "shard_dispatch") != 2 {
		t.Errorf("sweep timeline %v: want two shard_dispatch events", types)
	}
	if countType(types, "shard_done") != 2 {
		t.Errorf("sweep timeline %v: want two shard_done events", types)
	}

	// Each backend ran one job of the sweep's trace, and its own flight
	// recorder narrates the job lifecycle.
	for i, burl := range backendURLs {
		resp, err := http.Get(burl + "/v1/jobs?state=done")
		if err != nil {
			t.Fatal(err)
		}
		var page struct {
			Jobs []Job `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(page.Jobs) != 1 {
			t.Fatalf("backend %d ran %d jobs, want 1", i, len(page.Jobs))
		}
		j := page.Jobs[0]
		if j.TraceID != doc.TraceID {
			t.Errorf("backend %d job trace = %s, want the sweep trace %s", i, j.TraceID, doc.TraceID)
		}
		jt := collectEvents(t, fmt.Sprintf("%s/v1/jobs/%s/events", burl, j.ID))
		for _, want := range []string{"queued", "started", "done"} {
			if countType(jt, want) != 1 {
				t.Errorf("backend %d job timeline %v: want one %q event", i, jt, want)
			}
		}
	}

	for _, s := range append(backendServers, coord) {
		if err := shutdownServer(s); err != nil {
			t.Fatal(err)
		}
	}
}
