package core

import (
	"bytes"
	"strings"
	"testing"

	"pcmcomp/internal/block"
	"pcmcomp/internal/rng"
)

// driveTraffic applies a deterministic mixed write stream.
func driveTraffic(c *Controller, seed uint64, writes int) {
	r := rng.New(seed)
	for i := 0; i < writes; i++ {
		addr := r.Intn(c.LogicalLines())
		var data block.Block
		if r.Intn(3) == 0 {
			data = randomBlock(r.Uint64())
		} else {
			data = compressibleBlock(r.Uint64())
		}
		c.Write(addr, &data)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(800, 0.2))
	cfg.StartGapPsi = 13
	cfg.IntraCounterBits = 5
	orig := mustController(t, cfg)
	driveTraffic(orig, 9, 20000)

	var snap bytes.Buffer
	if err := orig.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	restored := mustController(t, cfg)
	if err := restored.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}

	// State equivalence: dead counts and every line's logical content.
	if restored.DeadLines() != orig.DeadLines() {
		t.Fatalf("dead lines %d != %d", restored.DeadLines(), orig.DeadLines())
	}
	for addr := 0; addr < orig.LogicalLines(); addr++ {
		a, _, errA := orig.Read(addr)
		b, _, errB := restored.Read(addr)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("addr %d readability differs: %v vs %v", addr, errA, errB)
		}
		if errA == nil && !block.Equal(&a, &b) {
			t.Fatalf("addr %d content differs after restore", addr)
		}
	}
}

func TestSnapshotResumeIsDeterministic(t *testing.T) {
	// Continuing from a snapshot must be bit-for-bit identical to never
	// having paused: run A straight through; run B pauses midway,
	// restores into a fresh controller, and continues.
	cfg := DefaultConfig(CompWF, testMemory(600, 0.2))
	cfg.StartGapPsi = 7
	cfg.IntraCounterBits = 5

	straight := mustController(t, cfg)
	driveTraffic(straight, 11, 12000)
	driveTraffic(straight, 12, 12000)

	paused := mustController(t, cfg)
	driveTraffic(paused, 11, 12000)
	var snap bytes.Buffer
	if err := paused.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	resumed := mustController(t, cfg)
	if err := resumed.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	driveTraffic(resumed, 12, 12000)

	if straight.DeadLines() != resumed.DeadLines() {
		t.Fatalf("dead lines diverged: %d vs %d", straight.DeadLines(), resumed.DeadLines())
	}
	for addr := 0; addr < straight.LogicalLines(); addr++ {
		a, _, errA := straight.Read(addr)
		b, _, errB := resumed.Read(addr)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("addr %d readability diverged", addr)
		}
		if errA == nil && !block.Equal(&a, &b) {
			t.Fatalf("addr %d content diverged after resume", addr)
		}
	}
	// Physical wear must match too: compare a sample of fault bitmaps.
	for phys := 0; phys < straight.PhysicalLines(); phys++ {
		la := straight.Memory().Peek(phys)
		lb := resumed.Memory().Peek(phys)
		if (la == nil) != (lb == nil) {
			t.Fatalf("line %d materialization diverged", phys)
		}
		if la == nil {
			continue
		}
		if la.Faults().Words() != lb.Faults().Words() {
			t.Fatalf("line %d fault bitmap diverged", phys)
		}
		if la.Writes() != lb.Writes() {
			t.Fatalf("line %d write count diverged", phys)
		}
	}
}

func TestSnapshotStatsReset(t *testing.T) {
	cfg := DefaultConfig(Comp, testMemory(1e6, 0.15))
	orig := mustController(t, cfg)
	driveTraffic(orig, 3, 500)
	var snap bytes.Buffer
	if err := orig.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored := mustController(t, cfg)
	driveTraffic(restored, 4, 10) // pre-restore noise must be wiped
	if err := restored.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s := restored.Stats(); s.Writes != 0 {
		t.Fatalf("stats not reset: %d writes", s.Writes)
	}
}

func TestSnapshotRejectsJunk(t *testing.T) {
	cfg := DefaultConfig(Comp, testMemory(1e6, 0.15))
	c := mustController(t, cfg)
	if err := c.ReadSnapshot(strings.NewReader("BOGUSDATA")); err == nil {
		t.Fatal("junk snapshot accepted")
	}
	// Mismatched shape: snapshot from a bigger controller.
	bigCfg := cfg
	bigCfg.Memory.Geometry.LinesPerBank = 17
	big := mustController(t, bigCfg)
	driveTraffic(big, 5, 200)
	var snap bytes.Buffer
	if err := big.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadSnapshot(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("mismatched-shape snapshot accepted")
	}
	// Truncated stream.
	var ok bytes.Buffer
	if err := c.WriteSnapshot(&ok); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadSnapshot(bytes.NewReader(ok.Bytes()[:ok.Len()/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
