package core

import (
	"fmt"

	"pcmcomp/internal/compress"
)

// Metadata is the paper's §III-B per-line in-memory metadata: a 6-bit
// pointer to the start of the compression window, 5 bits of encoding
// information for the decompressor, and the 2-bit saturating counter —
// 13 bits stored at the head of the line's ECC-chip share, plus a
// compressed flag kept in one of ECP-6's three spare bits (64 - 61).
//
// The controller keeps this state in its lineMeta; Metadata is the
// wire/storage form, provided so tools and tests can round-trip exactly
// what the hardware would store.
type Metadata struct {
	// Start is the window origin byte (6 bits, 0-63).
	Start uint8
	// Encoding is the 5-bit compression encoding.
	Encoding compress.Encoding
	// SC is the 2-bit saturating counter of the Fig 8 heuristic.
	SC uint8
	// Compressed is the spare-bit flag marking compressed lines.
	Compressed bool
}

// MetadataBits is the in-line metadata width (excluding the spare-bit
// compressed flag).
const MetadataBits = 6 + compress.MetadataBits + 2

// Pack encodes the metadata into its 14-bit storage image: bits 0-5 the
// start pointer, 6-10 the encoding, 11-12 the SC, 13 the compressed flag.
func (m Metadata) Pack() (uint16, error) {
	if m.Start > 63 {
		return 0, fmt.Errorf("core: start pointer %d exceeds 6 bits", m.Start)
	}
	if m.Encoding >= compress.NumEncodings {
		return 0, fmt.Errorf("core: encoding %d exceeds 5 bits", m.Encoding)
	}
	if m.SC > 3 {
		return 0, fmt.Errorf("core: SC %d exceeds 2 bits", m.SC)
	}
	v := uint16(m.Start) | uint16(m.Encoding)<<6 | uint16(m.SC)<<11
	if m.Compressed {
		v |= 1 << 13
	}
	return v, nil
}

// UnpackMetadata decodes a storage image produced by Pack.
func UnpackMetadata(v uint16) (Metadata, error) {
	if v>>14 != 0 {
		return Metadata{}, fmt.Errorf("core: metadata image %#x exceeds 14 bits", v)
	}
	m := Metadata{
		Start:      uint8(v & 0x3f),
		Encoding:   compress.Encoding(v >> 6 & 0x1f),
		SC:         uint8(v >> 11 & 0x3),
		Compressed: v>>13&1 == 1,
	}
	if m.Encoding >= compress.NumEncodings {
		return Metadata{}, fmt.Errorf("core: invalid encoding %d in metadata image", m.Encoding)
	}
	return m, nil
}

// LineMetadata returns the storage-form metadata of the line at the given
// logical address (for inspection tools).
func (c *Controller) LineMetadata(addr int) (Metadata, error) {
	bank, lrow := c.locate(addr)
	bs := &c.banks[bank]
	meta := &bs.meta[bs.sg.Map(lrow)]
	if !meta.written() {
		return Metadata{}, fmt.Errorf("core: line %d has never been written", addr)
	}
	return Metadata{
		Start:      meta.start,
		Encoding:   meta.enc,
		SC:         meta.sc,
		Compressed: meta.enc.IsCompressed(),
	}, nil
}
