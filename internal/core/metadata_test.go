package core

import (
	"testing"
	"testing/quick"

	"pcmcomp/internal/compress"
)

func TestMetadataPackUnpackRoundTrip(t *testing.T) {
	f := func(start, sc uint8, enc uint8, compressed bool) bool {
		m := Metadata{
			Start:      start % 64,
			Encoding:   compress.Encoding(enc % uint8(compress.NumEncodings)),
			SC:         sc % 4,
			Compressed: compressed,
		}
		v, err := m.Pack()
		if err != nil {
			return false
		}
		back, err := UnpackMetadata(v)
		return err == nil && back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMetadataPackRejectsOutOfRange(t *testing.T) {
	cases := []Metadata{
		{Start: 64},
		{Encoding: compress.Encoding(compress.NumEncodings)},
		{SC: 4},
	}
	for i, m := range cases {
		if _, err := m.Pack(); err == nil {
			t.Errorf("case %d: out-of-range metadata packed", i)
		}
	}
}

func TestUnpackMetadataRejectsJunk(t *testing.T) {
	if _, err := UnpackMetadata(1 << 14); err == nil {
		t.Error("15-bit image accepted")
	}
	// Encoding field 31 is invalid (NumEncodings = 10).
	if _, err := UnpackMetadata(31 << 6); err == nil {
		t.Error("invalid encoding accepted")
	}
}

func TestMetadataBitsMatchPaper(t *testing.T) {
	// §III-B: 6 (start pointer) + 5 (encoding) + 2 (SC) = 13 bits, with
	// the compressed flag in an ECP-6 spare bit.
	if MetadataBits != 13 {
		t.Fatalf("metadata = %d bits, paper says 13", MetadataBits)
	}
}

func TestLineMetadataReflectsWrites(t *testing.T) {
	c := mustController(t, DefaultConfig(CompWF, testMemory(1e6, 0.15)))
	if _, err := c.LineMetadata(0); err == nil {
		t.Fatal("metadata of never-written line should error")
	}
	data := compressibleBlock(3)
	out := c.Write(0, &data)
	if !out.Stored {
		t.Fatal("write failed")
	}
	m, err := c.LineMetadata(0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Compressed || !m.Encoding.IsCompressed() {
		t.Fatal("compressible write not marked compressed")
	}
	if int(m.Start) != out.WindowStart {
		t.Fatalf("metadata start %d != outcome window %d", m.Start, out.WindowStart)
	}
	if _, err := m.Pack(); err != nil {
		t.Fatalf("live metadata does not pack: %v", err)
	}

	raw := randomBlock(4)
	c.Write(1, &raw)
	m, err = c.LineMetadata(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Compressed {
		t.Fatal("raw write marked compressed")
	}
}
