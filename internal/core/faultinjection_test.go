package core

// Failure-injection tests: stuck cells are planted directly in the PCM
// substrate and the controller's window placement, sliding, and read-back
// correctness are checked against them.

import (
	"testing"

	"pcmcomp/internal/block"
	"pcmcomp/internal/rng"
)

// injectFaults sticks n evenly spaced cells of the physical line backing
// logical address addr, freezing each at its current value.
func injectFaults(t *testing.T, c *Controller, addr, start, n, stride int) {
	t.Helper()
	bank, lrow := c.locate(addr)
	bs := &c.banks[bank]
	row := bs.sg.Map(lrow)
	line := c.mem.Line(c.physAddr(bank, row))
	for i := 0; i < n; i++ {
		line.Faults().Add((start + i*stride) % block.Bits)
	}
}

func TestWriteAvoidsInjectedFaultCluster(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(1e9, 0.15))
	cfg.StartGapPsi = 1 << 30
	c := mustController(t, cfg)
	// 20 stuck cells in bytes 0-9: far beyond ECP-6, but clustered.
	injectFaults(t, c, 0, 0, 20, 4)
	data := compressibleBlock(1)
	out := c.Write(0, &data)
	if !out.Stored {
		t.Fatal("write failed despite a clean region existing")
	}
	// The chosen window must be ECP-6-correctable despite 20 line faults.
	bank, lrow := c.locate(0)
	bs := &c.banks[bank]
	line := c.mem.Line(c.physAddr(bank, bs.sg.Map(lrow)))
	if got := line.Faults().CountInByteWindow(out.WindowStart, out.Size); got > 6 {
		t.Fatalf("window [%d,+%d) holds %d faults > 6", out.WindowStart, out.Size, got)
	}
	got, _, err := c.Read(0)
	if err != nil || !block.Equal(&got, &data) {
		t.Fatalf("read-back after fault avoidance: %v", err)
	}
}

func TestRawWriteDiesOnSevenInjectedFaults(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(1e9, 0.15))
	cfg.StartGapPsi = 1 << 30
	c := mustController(t, cfg)
	injectFaults(t, c, 0, 0, 7, 64) // 7 faults spread across the line
	raw := randomBlock(2)
	out := c.Write(0, &raw)
	if out.Stored {
		t.Fatal("raw 64B write stored despite 7 faults (ECP-6 limit is 6)")
	}
	if !out.Died {
		t.Fatal("line should die on unplaceable write")
	}
	// A compressed write can no longer revive it through the demand path
	// (resurrection only happens on Start-Gap movement).
	small := compressibleBlock(3)
	if out := c.Write(0, &small); out.Stored {
		t.Fatal("demand write revived a dead line without a movement")
	}
}

func TestCompressedWriteSurvivesSevenSpreadFaults(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(1e9, 0.15))
	cfg.StartGapPsi = 1 << 30
	c := mustController(t, cfg)
	injectFaults(t, c, 0, 0, 7, 64)
	small := compressibleBlock(3) // 16B window: at most 2 faults inside
	out := c.Write(0, &small)
	if !out.Stored {
		t.Fatal("16B window should dodge spread faults")
	}
	got, _, err := c.Read(0)
	if err != nil || !block.Equal(&got, &small) {
		t.Fatalf("read-back: %v", err)
	}
}

func TestHeavilyFaultedLineStillServesOneByte(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(1e9, 0.15))
	cfg.StartGapPsi = 1 << 30
	c := mustController(t, cfg)
	// Stick every cell except one clean byte window.
	bank, lrow := c.locate(0)
	bs := &c.banks[bank]
	line := c.mem.Line(c.physAddr(bank, bs.sg.Map(lrow)))
	for i := 0; i < block.Bits; i++ {
		if i/8 == 40 { // byte 40 stays healthy
			continue
		}
		line.Faults().Add(i)
	}
	var zero block.Block // compresses to 1 byte
	out := c.Write(0, &zero)
	if !out.Stored {
		t.Fatal("1-byte payload should fit the single healthy byte")
	}
	if out.WindowStart != 40 {
		t.Fatalf("window at %d, want 40", out.WindowStart)
	}
	got, _, err := c.Read(0)
	if err != nil || !block.Equal(&got, &zero) {
		t.Fatalf("read-back: %v", err)
	}
}

func TestStuckCellsNeverCorruptReads(t *testing.T) {
	// Randomized adversary: inject random fault batches between random
	// writes; every successful write must read back intact.
	cfg := DefaultConfig(CompWF, testMemory(1e9, 0.15))
	cfg.StartGapPsi = 50
	c := mustController(t, cfg)
	r := rng.New(99)
	shadow := make(map[int]block.Block)
	for op := 0; op < 5000; op++ {
		addr := r.Intn(c.LogicalLines())
		if r.Intn(10) == 0 {
			injectFaults(t, c, addr, r.Intn(block.Bits), 1+r.Intn(5), 1+r.Intn(60))
			continue
		}
		var data block.Block
		if r.Intn(2) == 0 {
			data = compressibleBlock(r.Uint64())
		} else {
			data = randomBlock(r.Uint64())
		}
		if out := c.Write(addr, &data); out.Stored {
			shadow[addr] = data
		} else {
			delete(shadow, addr)
		}
	}
	for addr, want := range shadow {
		got, _, err := c.Read(addr)
		if err != nil {
			continue // line died via movement copy after its last store
		}
		if !block.Equal(&got, &want) {
			t.Fatalf("addr %d corrupted", addr)
		}
	}
}
