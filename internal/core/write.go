package core

import (
	"pcmcomp/internal/block"
	"pcmcomp/internal/compress"
	"pcmcomp/internal/ecc"
	"pcmcomp/internal/encode"
	"pcmcomp/internal/pcm"
	"pcmcomp/internal/wear"
)

// Outcome reports what happened to one logical write-back.
type Outcome struct {
	// Stored is false when the line was dead and the write was dropped
	// (an uncorrectable error).
	Stored bool
	// Compressed reports whether the data was stored compressed.
	Compressed bool
	// Size is the stored payload size in bytes.
	Size int
	// WindowStart is the window origin byte (wraps modulo the line size).
	WindowStart int
	// FlipsNeeded / FlipsWritten / StuckFlips aggregate the differential
	// write work (see pcm.WriteResult).
	FlipsNeeded, FlipsWritten, StuckFlips int
	// NewFaults is the number of cells that wore out during this write.
	NewFaults int
	// Died reports that this write killed the line (no placement found).
	Died bool
	// Resurrected reports that a previously dead line came back (Comp+WF).
	Resurrected bool
}

// Write stores one LLC write-back at the logical line address. It drives
// the full §III mechanism: wear-leveling bookkeeping, the compression
// decision (Fig 8), window placement and sliding (Fig 4), the differential
// write, and death/resurrection accounting.
func (c *Controller) Write(addr int, data *block.Block) Outcome {
	bank, lrow := c.locate(addr)
	bs := &c.banks[bank]

	// Intra-line wear-leveling: one counter per bank; saturation rotates
	// the bank's window origin (§III-A.2).
	if c.cfg.UseIntraWL {
		if bs.rot.OnWrite() {
			c.stats.Rotations++
		}
	}

	// Inter-line wear-leveling: Start-Gap may move one line now. The copy
	// itself is a write that wears cells and re-runs placement — this is
	// also where resurrecting systems re-check dead lines (§III-A.3).
	// Without Start-Gap the mapping stays identity (the gap never moves).
	if c.cfg.UseStartGap {
		if mv, moved := bs.sg.OnWrite(); moved {
			c.stats.GapMovements++
			c.moveLine(bank, mv)
		}
	}

	row := bs.sg.Map(lrow)
	return c.writePhysical(bank, row, data, false)
}

// moveLine relocates the content of physical row mv.From into mv.To as part
// of a Start-Gap movement. The destination was the gap (or, in Comp+WF, a
// line whose dead status is now re-evaluated with the incoming data).
func (c *Controller) moveLine(bank int, mv wear.Movement) {
	bs := &c.banks[bank]
	from := &bs.meta[mv.From]
	if !from.written() {
		// Nothing resident; the gap simply moves. Dead flags track the
		// physical lines' worn cells and stay put.
		bs.meta[mv.To] = lineMeta{dead: bs.meta[mv.To].dead}
		*from = lineMeta{dead: from.dead}
		return
	}
	logical, err := c.comp.Decompress(from.enc, from.payload)
	if err != nil {
		// Metadata corruption cannot happen with invariant payloads;
		// treat defensively as a dropped line.
		bs.meta[mv.To] = lineMeta{dead: bs.meta[mv.To].dead}
		*from = lineMeta{dead: from.dead}
		c.stats.UncorrectableErrors++
		return
	}

	// Preserve the logical line's SC/size-tracking state across the move.
	sc, prev := from.sc, from.prevCompSize
	fromDead := from.dead
	*from = lineMeta{dead: fromDead} // From becomes the gap (physical state stays)

	to := &bs.meta[mv.To]
	to.sc, to.prevCompSize = sc, prev
	c.writePhysical(bank, mv.To, &logical, true)
}

// writePhysical stores data into the given physical row, applying the
// compression decision and window placement. isMove marks Start-Gap copies:
// in Comp+WF these are the only writes allowed to retry a dead line.
func (c *Controller) writePhysical(bank, row int, data *block.Block, isMove bool) Outcome {
	bs := &c.banks[bank]
	meta := &bs.meta[row]
	c.stats.Writes++

	if meta.dead && !(c.cfg.Resurrect && isMove) {
		c.stats.UncorrectableErrors++
		c.stats.DroppedWrites++
		return Outcome{}
	}
	wasDead := meta.dead

	// --- Compression decision (Fig 8) ---
	payload, enc := c.chooseRepresentation(meta, data)
	size := len(payload)

	line := c.mem.Line(c.physAddr(bank, row))
	var out Outcome
	out.Size = size
	out.Compressed = enc.IsCompressed()

	// --- Placement and write, with re-placement if cells die mid-write ---
	for attempt := 0; attempt < c.cfg.MaxPlaceRetries; attempt++ {
		origin, ok := c.place(bs, meta, line.Faults(), size)
		if !ok {
			break
		}
		res := c.writeWindow(line, payload, origin)
		out.FlipsNeeded += res.FlipsNeeded
		out.FlipsWritten += res.FlipsWritten
		out.StuckFlips += res.StuckFlips
		out.NewFaults += len(res.NewFaults)
		c.stats.BitFlips += uint64(res.FlipsWritten)
		c.stats.SetPulses += uint64(res.Sets)
		c.stats.ResetPulses += uint64(res.Resets)
		c.stats.NewFaults += uint64(len(res.NewFaults))

		// Write-verify: if the cells that died during this write leave the
		// window uncorrectable, the data is not safely stored; try again
		// elsewhere in the line.
		if c.cfg.Scheme.Correctable(line.Faults(), origin, size) {
			if meta.written() && int(meta.start) != origin {
				c.stats.StartPointerUpdates++
			}
			if meta.written() && meta.enc != enc {
				c.stats.EncodingUpdates++
			}
			meta.start = uint8(origin)
			meta.enc = enc
			meta.size = uint8(size)
			meta.payload = append(meta.payload[:0], payload...)
			if wasDead {
				meta.dead = false
				c.deadCount--
				c.stats.Resurrections++
				out.Resurrected = true
			}
			out.Stored = true
			out.WindowStart = origin
			if out.Compressed {
				c.stats.CompressedWrites++
			}
			return out
		}
	}

	// No placement: the line dies (Fig 4, "worn out").
	c.stats.UncorrectableErrors++
	c.stats.DroppedWrites++
	if !meta.dead {
		meta.dead = true
		c.deadCount++
		c.stats.DeathFaultCells.Add(float64(line.Faults().Count()))
		out.Died = true
	}
	return out
}

// chooseRepresentation applies the Fig 8 flow: small compressed sizes are
// always stored compressed; size-unstable lines (saturated SC) are stored
// raw to avoid the extra bit flips compression entropy would cause.
func (c *Controller) chooseRepresentation(meta *lineMeta, data *block.Block) ([]byte, compress.Encoding) {
	if !c.cfg.UseCompression {
		return data[:], compress.EncUncompressed
	}
	// The Compressor's scratch-backed result is only valid until its next
	// Compress call; writePhysical copies it into meta.payload before any
	// other write can run, so no heap copy is needed here.
	res := c.comp.Compress(data)
	newSize := res.Size()

	if !c.cfg.UseSCHeuristic {
		meta.prevCompSize = uint8(newSize)
		return res.Data, res.Encoding
	}
	if newSize < c.cfg.Threshold1 { // step 1: highly compressible
		meta.prevCompSize = uint8(newSize)
		return res.Data, res.Encoding
	}
	// Track size stability on every write: the LLC message channel
	// (§III-B) hands the controller the previous compressed size and SC
	// regardless of how the line is currently stored, so a line that
	// saturated can earn its way back to compression once its sizes
	// stabilize.
	saturated := meta.sc == 3
	delta := newSize - int(meta.prevCompSize)
	if delta < 0 {
		delta = -delta
	}
	if meta.written() || meta.prevCompSize != 0 {
		if delta < c.cfg.Threshold2 {
			if meta.sc > 0 {
				meta.sc--
			}
		} else if meta.sc < 3 {
			meta.sc++
		}
	}
	meta.prevCompSize = uint8(newSize)
	if saturated { // step 2: size-unstable line, write raw
		c.stats.HeuristicRawWrites++
		return data[:], compress.EncUncompressed
	}
	return res.Data, res.Encoding
}

// place finds a window origin for a payload of the given size (Fig 4).
//
// Baseline and raw writes need the full line (origin 0). For compressed
// writes the preference order embodies each system's policy:
//
//   - Comp keeps the line's current start pointer (initially the least
//     significant byte) and only slides — without wrapping — when faults
//     make the current window uncorrectable or the size no longer fits.
//   - Comp+W / Comp+WF prefer the bank's rotation offset and may wrap the
//     window around the line end, sweeping wear across all cells.
//
// It returns the first origin whose window the ECC scheme can correct.
func (c *Controller) place(bs *bankState, meta *lineMeta, faults *ecc.FaultSet, size int) (int, bool) {
	if size >= block.Size {
		// Raw write: the window is the whole line.
		if c.cfg.Scheme.Correctable(faults, 0, block.Size) {
			return 0, true
		}
		return 0, false
	}

	// Fast path: a fault-free line accepts the preferred origin directly.
	noFaults := faults.Count() == 0

	if c.cfg.UseIntraWL {
		preferred := bs.rot.Offset()
		if noFaults || c.cfg.Scheme.Correctable(faults, preferred, size) {
			return preferred, true
		}
		for i := 1; i < block.Size; i++ {
			origin := (preferred + i) % block.Size
			if c.cfg.Scheme.Correctable(faults, origin, size) {
				return origin, true
			}
		}
		return 0, false
	}

	// Comp: sticky start pointer, contiguous (non-wrapping) windows only.
	preferred := int(meta.start)
	if preferred+size <= block.Size && (noFaults || c.cfg.Scheme.Correctable(faults, preferred, size)) {
		return preferred, true
	}
	for origin := 0; origin+size <= block.Size; origin++ {
		if origin == preferred {
			continue
		}
		if noFaults || c.cfg.Scheme.Correctable(faults, origin, size) {
			return origin, true
		}
	}
	return 0, false
}

// writeWindow overlays the payload onto the line's current physical content
// at the (possibly wrapping) window starting at origin, and performs the
// differential write of the affected byte range(s). With UseFNW set, the
// payload or its complement — whichever flips fewer cells — is written, and
// the choice is modeled as a per-window flip bit. A configured Encoder then
// transforms the window word-by-word against the current cell content (the
// per-word selectors model auxiliary metadata, like FNW's flip bit), so the
// cells receive the cheaper encoded image while reads keep returning the
// logical payload.
func (c *Controller) writeWindow(line *pcm.Line, payload []byte, origin int) pcm.WriteResult {
	size := len(payload)
	target := *line.Data()
	for i, b := range payload {
		target[(origin+i)%block.Size] = b
	}

	head := size
	if origin+size > block.Size {
		head = block.Size - origin
	}
	tail := size - head

	if c.cfg.UseFNW {
		flips := block.HammingDistanceWindow(line.Data(), &target, origin, head)
		if tail > 0 {
			flips += block.HammingDistanceWindow(line.Data(), &target, 0, tail)
		}
		if flips*2 > size*8 {
			for i := 0; i < size; i++ {
				idx := (origin + i) % block.Size
				target[idx] = ^target[idx]
			}
			c.stats.FNWInversions++
		}
	}

	if enc := c.cfg.Encoder; enc != nil {
		old := line.Data()
		for i := 0; i < size; i++ {
			idx := (origin + i) % block.Size
			c.encNew[i] = target[idx]
			c.encOld[i] = old[idx]
		}
		sets0, resets0 := encode.Pulses(c.encOld[:size], c.encNew[:size])
		words := encode.Words(size, enc.WordBytes())
		enc.Encode(c.encNew[:size], c.encOld[:size], c.encSel[:words])
		sets1, resets1 := encode.Pulses(c.encOld[:size], c.encNew[:size])
		for i := 0; i < size; i++ {
			target[(origin+i)%block.Size] = c.encNew[i]
		}
		c.stats.EncodedWrites++
		c.stats.EncoderFlipsSaved += int64(sets0+resets0) - int64(sets1+resets1)
		c.stats.EncoderEnergySavedPJ += c.energy.WriteEnergyPJ(sets0, resets0) -
			c.energy.WriteEnergyPJ(sets1, resets1)
	}

	res := line.WriteWindow(&target, origin, head)
	if tail > 0 {
		res2 := line.WriteWindow(&target, 0, tail)
		res.FlipsNeeded += res2.FlipsNeeded
		res.FlipsWritten += res2.FlipsWritten
		res.Sets += res2.Sets
		res.Resets += res2.Resets
		res.StuckFlips += res2.StuckFlips
		res.NewFaults = append(res.NewFaults, res2.NewFaults...)
	}
	return res
}
