// Package core implements the DSN'17 paper's primary contribution: a PCM
// memory controller that stores LLC write-backs compressed inside a
// variable-size compression window of each line, and coordinates that
// window with differential writes, intra-line and inter-line wear-leveling,
// and the hard-error tolerance scheme.
//
// The controller supports the four systems the paper evaluates (§IV):
//
//   - Baseline: uncompressed writes + chip-level DW + Start-Gap + ECP-6.
//   - Comp:     naive compression — the window sits at the least-significant
//     bytes and slides only when faults force it.
//   - Comp+W:   adds the per-bank counter-based intra-line wear-leveling
//     that rotates window origins across the line.
//   - Comp+WF:  adds the advanced fault-tolerance definition — a line is
//     never permanently dead; inter-line wear-leveling re-attempts
//     placement so highly compressible data can resurrect it.
//
// Per-line metadata follows §III-B: a 6-bit window start pointer, 5-bit
// encoding, 2-bit saturating counter (SC) and a compressed flag, all fitting
// the spare bits of the ECC chip share.
package core

import (
	"fmt"

	"pcmcomp/internal/block"
	"pcmcomp/internal/compress"
	"pcmcomp/internal/compress/fvc"
	"pcmcomp/internal/ecc"
	"pcmcomp/internal/ecc/ecp"
	"pcmcomp/internal/encode"
	"pcmcomp/internal/pcm"
	"pcmcomp/internal/wear"
)

// SystemKind selects which of the paper's four evaluated systems the
// controller implements.
type SystemKind int

// The four systems of §IV ("Evaluated systems").
const (
	Baseline SystemKind = iota + 1
	Comp
	CompW
	CompWF
)

// String returns the paper's name for the system.
func (s SystemKind) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case Comp:
		return "Comp"
	case CompW:
		return "Comp+W"
	case CompWF:
		return "Comp+WF"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(s))
	}
}

// CanonicalName returns the lowercase request/CLI spelling of the system,
// the form SystemByName round-trips.
func (s SystemKind) CanonicalName() string {
	switch s {
	case Baseline:
		return "baseline"
	case Comp:
		return "comp"
	case CompW:
		return "comp+w"
	case CompWF:
		return "comp+wf"
	default:
		return fmt.Sprintf("systemkind(%d)", int(s))
	}
}

// SystemByName maps the request/CLI spellings onto SystemKind, accepting
// the "+"-less aliases; unknown names report the valid set, mirroring
// config.ByName.
func SystemByName(name string) (SystemKind, error) {
	switch name {
	case "baseline":
		return Baseline, nil
	case "comp":
		return Comp, nil
	case "comp+w", "compw":
		return CompW, nil
	case "comp+wf", "compwf":
		return CompWF, nil
	default:
		return 0, fmt.Errorf("unknown system %q (want baseline, comp, comp+w, or comp+wf)", name)
	}
}

// Config parameterizes a Controller.
//
// A controller is defined by four independent capabilities — compression,
// intra-line rotation, Start-Gap, and dead-line resurrection — plus the
// hard-error scheme and an optional write-encoder stage. The paper's four
// systems are presets over those capabilities: setting System to a
// SystemKind makes New fill the capability flags to match, which is how
// every pre-registry caller keeps its exact behavior. A composed scheme
// (internal/scheme) instead leaves System zero, names itself with Label,
// and sets the capabilities directly.
type Config struct {
	// System, when non-zero, selects one of the paper's presets and
	// overrides the capability flags below.
	System SystemKind
	// Label names a composed (non-preset) configuration; required when
	// System is zero.
	Label string
	// UseCompression stores write-backs compressed (preset: all but
	// Baseline).
	UseCompression bool
	// UseIntraWL rotates window origins per bank (preset: Comp+W, Comp+WF).
	UseIntraWL bool
	// UseStartGap enables inter-line Start-Gap wear leveling (preset: all
	// four systems).
	UseStartGap bool
	// Resurrect lets Start-Gap copies re-attempt placement on dead lines
	// (preset: Comp+WF).
	Resurrect bool
	// Encoder is an optional write-encoder stage applied to each window
	// before the differential write (nil = none; see internal/encode).
	Encoder encode.Encoder
	// FVC, when non-nil, adds frequent-value compression to the codec race.
	FVC *fvc.Dict
	// DisableBDI / DisableFPC remove a codec from the race (the zero value
	// keeps the paper's BDI+FPC configuration).
	DisableBDI bool
	DisableFPC bool
	// Memory configures the PCM substrate.
	Memory pcm.Config
	// Scheme is the hard-error tolerance scheme (nil selects ECP-6, the
	// paper's baseline).
	Scheme ecc.Scheme
	// Threshold1 is the compressed-size bound (bytes) under which data is
	// always written compressed (Fig 8, step 1).
	Threshold1 int
	// Threshold2 is the size-change bound (bytes): consecutive compressed
	// sizes differing by less than this decrement SC (Fig 8, step 3).
	Threshold2 int
	// UseSCHeuristic enables the Fig 8 bit-flip control flow. The paper's
	// compressed systems all use it; disable for the ablation benches.
	UseSCHeuristic bool
	// UseFNW replaces plain differential writes with Flip-N-Write at the
	// window granularity (extension; DESIGN.md §5).
	UseFNW bool
	// StartGapPsi is the inter-line wear-leveling gap-movement period.
	StartGapPsi int
	// IntraCounterBits and IntraStepBytes configure the per-bank intra-line
	// rotation (paper: 16 bits, 1 byte).
	IntraCounterBits int
	IntraStepBytes   int
	// MaxPlaceRetries bounds re-placement attempts when cells die during
	// the write itself.
	MaxPlaceRetries int
}

// DefaultConfig returns the paper's configuration for the given system on
// the given memory substrate: ECP-6, Start-Gap psi 100, 16-bit/1-byte
// intra-line rotation, SC heuristic on, thresholds 16/8 bytes.
func DefaultConfig(system SystemKind, mem pcm.Config) Config {
	return Config{
		System:           system,
		Memory:           mem,
		Scheme:           ecp.New(6),
		Threshold1:       16,
		Threshold2:       8,
		UseSCHeuristic:   true,
		StartGapPsi:      100,
		IntraCounterBits: 16,
		IntraStepBytes:   1,
		MaxPlaceRetries:  4,
	}
}

// lineMeta is the controller's per-physical-line state. The first four
// fields model the 13-bit in-memory metadata of §III-B plus the compressed
// flag; payload models the logically stored (ECC-corrected) content, which
// a real system reconstructs from the physical cells plus the correction
// metadata.
type lineMeta struct {
	start        uint8 // 6-bit window start pointer (byte offset)
	enc          compress.Encoding
	sc           uint8 // 2-bit saturating counter
	size         uint8 // stored payload size in bytes (0 = never written)
	prevCompSize uint8 // compressed size of the previous write-back
	dead         bool
	payload      []byte
}

func (m *lineMeta) written() bool { return m.size != 0 }

// bankState bundles the per-bank mechanisms: Start-Gap over the bank's rows
// and the intra-line rotation counter.
type bankState struct {
	sg   *wear.StartGap
	rot  *wear.IntraLine
	meta []lineMeta // indexed by physical row
}

// Controller is the compression-aware PCM memory controller.
type Controller struct {
	cfg       Config
	mem       *pcm.Memory
	banks     []bankState
	stats     Stats
	deadCount int
	// comp is the controller's reusable compression front-end; its scratch
	// buffer keeps the steady-state write path allocation-free.
	comp compress.Compressor
	// energy prices the SET/RESET pulses for the encoder-stage accounting.
	energy pcm.EnergyModel
	// encNew/encOld/encSel are the write-encoder stage's fixed scratch
	// (window bytes, current cell content, per-word selectors), sized for
	// the largest window so the hot path stays allocation-free.
	encNew, encOld [block.Size]byte
	encSel         [block.Size]uint8
}

// New creates a controller. It returns an error for invalid configuration.
func New(cfg Config) (*Controller, error) {
	switch cfg.System {
	case Baseline, Comp, CompW, CompWF:
		// Preset: the SystemKind defines the capabilities.
		cfg.UseCompression = cfg.System != Baseline
		cfg.UseIntraWL = cfg.System == CompW || cfg.System == CompWF
		cfg.UseStartGap = true
		cfg.Resurrect = cfg.System == CompWF
	case 0:
		if cfg.Label == "" {
			return nil, fmt.Errorf("core: unknown system kind %d (set System to a preset or Label a composed scheme)", cfg.System)
		}
	default:
		return nil, fmt.Errorf("core: unknown system kind %d", cfg.System)
	}
	if err := cfg.Memory.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Memory.Geometry.LinesPerBank < 2 {
		return nil, fmt.Errorf("core: need >= 2 lines per bank (one is the Start-Gap spare), got %d",
			cfg.Memory.Geometry.LinesPerBank)
	}
	if cfg.Scheme == nil {
		cfg.Scheme = ecp.New(6)
	}
	if cfg.Threshold1 < 1 || cfg.Threshold1 > block.Size {
		return nil, fmt.Errorf("core: Threshold1 %d out of range [1,%d]", cfg.Threshold1, block.Size)
	}
	if cfg.Threshold2 < 1 || cfg.Threshold2 > block.Size {
		return nil, fmt.Errorf("core: Threshold2 %d out of range [1,%d]", cfg.Threshold2, block.Size)
	}
	if cfg.StartGapPsi < 1 {
		return nil, fmt.Errorf("core: StartGapPsi must be >= 1, got %d", cfg.StartGapPsi)
	}
	if cfg.MaxPlaceRetries < 1 {
		cfg.MaxPlaceRetries = 1
	}

	g := cfg.Memory.Geometry
	c := &Controller{
		cfg:    cfg,
		mem:    pcm.New(cfg.Memory),
		banks:  make([]bankState, g.Banks()),
		comp:   compress.Compressor{FVC: cfg.FVC, DisableBDI: cfg.DisableBDI, DisableFPC: cfg.DisableFPC},
		energy: pcm.DefaultEnergyModel(),
	}
	logicalRows := g.LinesPerBank - 1 // one physical row is the Start-Gap spare
	for i := range c.banks {
		sg, err := wear.NewStartGap(logicalRows, cfg.StartGapPsi)
		if err != nil {
			return nil, err
		}
		rot, err := wear.NewIntraLine(cfg.IntraCounterBits, cfg.IntraStepBytes, block.Size)
		if err != nil {
			return nil, err
		}
		c.banks[i] = bankState{
			sg:   sg,
			rot:  rot,
			meta: make([]lineMeta, g.LinesPerBank),
		}
	}
	return c, nil
}

// System returns the controller's system kind (zero for a composed,
// non-preset scheme; see Label).
func (c *Controller) System() SystemKind { return c.cfg.System }

// Label returns the human-readable name of the controller's composition:
// the configured Label for a composed scheme, else the preset's name.
func (c *Controller) Label() string {
	if c.cfg.Label != "" {
		return c.cfg.Label
	}
	return c.cfg.System.String()
}

// Scheme returns the hard-error tolerance scheme in use.
func (c *Controller) Scheme() ecc.Scheme { return c.cfg.Scheme }

// LogicalLines returns the number of writable logical lines.
func (c *Controller) LogicalLines() int {
	return len(c.banks) * (c.cfg.Memory.Geometry.LinesPerBank - 1)
}

// PhysicalLines returns the total number of physical lines.
func (c *Controller) PhysicalLines() int {
	return c.cfg.Memory.Geometry.TotalLines()
}

// Memory exposes the underlying PCM substrate (read-only use intended).
func (c *Controller) Memory() *pcm.Memory { return c.mem }

// locate splits a logical line address into its bank and per-bank logical
// row. Logical addresses interleave across banks, matching pcm.Geometry.
func (c *Controller) locate(addr int) (bank, logicalRow int) {
	if addr < 0 || addr >= c.LogicalLines() {
		panic(fmt.Sprintf("core: logical address %d out of range [0,%d)", addr, c.LogicalLines()))
	}
	return addr % len(c.banks), addr / len(c.banks)
}

// physAddr converts a (bank, physical row) pair into a global line address
// for the pcm.Memory.
func (c *Controller) physAddr(bank, row int) int {
	return c.cfg.Memory.Geometry.Encode(pcm.Location{Bank: bank, Row: row})
}

// Read returns the logical content of the line at the logical address,
// together with the modeled decompression latency in CPU cycles. Reading a
// dead line or a never-written line returns an error.
func (c *Controller) Read(addr int) (block.Block, int, error) {
	bank, lrow := c.locate(addr)
	bs := &c.banks[bank]
	row := bs.sg.Map(lrow)
	meta := &bs.meta[row]
	var out block.Block
	if meta.dead {
		return out, 0, fmt.Errorf("core: line %d is dead (uncorrectable)", addr)
	}
	if !meta.written() {
		return out, 0, fmt.Errorf("core: line %d has never been written", addr)
	}
	out, err := c.comp.Decompress(meta.enc, meta.payload)
	if err != nil {
		return out, 0, fmt.Errorf("core: corrupt line %d: %w", addr, err)
	}
	c.stats.Reads++
	if meta.enc.IsCompressed() {
		c.stats.CompressedReads++
	}
	return out, meta.enc.DecompressionCycles(), nil
}

// DeadLines returns the number of currently dead physical lines.
func (c *Controller) DeadLines() int { return c.deadCount }

// DeadFraction returns dead physical lines / total physical lines, the
// quantity the paper's 50% end-of-life criterion tests.
func (c *Controller) DeadFraction() float64 {
	return float64(c.DeadLines()) / float64(c.PhysicalLines())
}
