package core

import (
	"testing"

	"pcmcomp/internal/block"
	"pcmcomp/internal/ecc/ecp"
	"pcmcomp/internal/pcm"
	"pcmcomp/internal/rng"
)

// testMemory builds a small PCM substrate with controllable endurance.
func testMemory(meanEndurance, cov float64) pcm.Config {
	return pcm.Config{
		Geometry: pcm.Geometry{
			Channels: 1, DIMMsPerChannel: 1, RanksPerDIMM: 1,
			BanksPerRank: 2, LinesPerBank: 9, // 8 logical rows + gap per bank
		},
		Endurance: pcm.Endurance{Mean: meanEndurance, CoV: cov},
		Seed:      7,
	}
}

func mustController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// compressibleBlock returns a line BDI compresses well (narrow values).
func compressibleBlock(seed uint64) block.Block {
	r := rng.New(seed)
	var b block.Block
	base := r.Uint64()
	for i := 0; i < 8; i++ {
		b.SetWord(i, base+uint64(r.Intn(100)))
	}
	return b
}

// randomBlock returns an incompressible line.
func randomBlock(seed uint64) block.Block {
	r := rng.New(seed)
	var b block.Block
	for i := 0; i < 8; i++ {
		b.SetWord(i, r.Uint64())
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	mem := testMemory(1e6, 0.15)
	if _, err := New(Config{System: SystemKind(0), Memory: mem}); err == nil {
		t.Error("unknown system accepted")
	}
	cfg := DefaultConfig(Baseline, mem)
	cfg.Memory.Geometry.LinesPerBank = 1
	if _, err := New(cfg); err == nil {
		t.Error("1 line per bank accepted (no Start-Gap spare)")
	}
	cfg = DefaultConfig(Comp, mem)
	cfg.Threshold1 = 0
	if _, err := New(cfg); err == nil {
		t.Error("Threshold1=0 accepted")
	}
	cfg = DefaultConfig(Comp, mem)
	cfg.Threshold2 = 100
	if _, err := New(cfg); err == nil {
		t.Error("Threshold2=100 accepted")
	}
	cfg = DefaultConfig(Comp, mem)
	cfg.StartGapPsi = 0
	if _, err := New(cfg); err == nil {
		t.Error("psi=0 accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(1e6, 0.15))
	if cfg.Scheme.Name() != "ECP-6" {
		t.Errorf("default scheme = %s", cfg.Scheme.Name())
	}
	if cfg.IntraCounterBits != 16 || cfg.IntraStepBytes != 1 {
		t.Error("intra-line WL defaults differ from the paper")
	}
	if !cfg.UseSCHeuristic {
		t.Error("SC heuristic should default on")
	}
}

func TestSystemNames(t *testing.T) {
	names := map[SystemKind]string{
		Baseline: "Baseline", Comp: "Comp", CompW: "Comp+W", CompWF: "Comp+WF",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestWriteReadRoundTripAllSystems(t *testing.T) {
	for _, sys := range []SystemKind{Baseline, Comp, CompW, CompWF} {
		t.Run(sys.String(), func(t *testing.T) {
			c := mustController(t, DefaultConfig(sys, testMemory(1e6, 0.15)))
			for addr := 0; addr < c.LogicalLines(); addr++ {
				var data block.Block
				if addr%2 == 0 {
					data = compressibleBlock(uint64(addr))
				} else {
					data = randomBlock(uint64(addr))
				}
				out := c.Write(addr, &data)
				if !out.Stored {
					t.Fatalf("write to %d not stored", addr)
				}
				got, _, err := c.Read(addr)
				if err != nil {
					t.Fatalf("read %d: %v", addr, err)
				}
				if !block.Equal(&got, &data) {
					t.Fatalf("round trip mismatch at %d", addr)
				}
			}
		})
	}
}

func TestBaselineNeverCompresses(t *testing.T) {
	c := mustController(t, DefaultConfig(Baseline, testMemory(1e6, 0.15)))
	data := compressibleBlock(1)
	out := c.Write(0, &data)
	if out.Compressed || out.Size != block.Size {
		t.Fatalf("baseline stored compressed: %+v", out)
	}
	if c.Stats().CompressedWrites != 0 {
		t.Fatal("baseline counted compressed writes")
	}
}

func TestCompStoresCompressed(t *testing.T) {
	c := mustController(t, DefaultConfig(Comp, testMemory(1e6, 0.15)))
	data := compressibleBlock(1)
	out := c.Write(0, &data)
	if !out.Compressed {
		t.Fatalf("compressible data stored raw: %+v", out)
	}
	if out.Size >= block.Size {
		t.Fatalf("compressed size = %d", out.Size)
	}
	if out.WindowStart != 0 {
		t.Fatalf("Comp window should start at LSB, got %d", out.WindowStart)
	}
}

func TestCompWindowSticksToLSB(t *testing.T) {
	c := mustController(t, DefaultConfig(Comp, testMemory(1e6, 0.15)))
	for i := 0; i < 100; i++ {
		data := compressibleBlock(uint64(i))
		out := c.Write(0, &data)
		if out.WindowStart != 0 {
			t.Fatalf("write %d: window moved to %d without faults", i, out.WindowStart)
		}
	}
}

func TestCompWRotatesWindows(t *testing.T) {
	cfg := DefaultConfig(CompW, testMemory(1e8, 0.15))
	cfg.IntraCounterBits = 4 // rotate every 16 bank writes
	c := mustController(t, cfg)
	origins := make(map[int]bool)
	for i := 0; i < 400; i++ {
		data := compressibleBlock(uint64(i % 3))
		out := c.Write(0, &data) // bank 0 gets every write
		if out.Stored {
			origins[out.WindowStart] = true
		}
	}
	if len(origins) < 10 {
		t.Fatalf("only %d distinct window origins; rotation not sweeping", len(origins))
	}
	if c.Stats().Rotations == 0 {
		t.Fatal("no rotations counted")
	}
}

func TestBaselineDiesAtSevenFaults(t *testing.T) {
	cfg := DefaultConfig(Baseline, testMemory(30, 0)) // uniform endurance 30
	c := mustController(t, cfg)
	var died bool
	// Alternate two random patterns: heavy flipping kills cells quickly.
	a, b := randomBlock(1), randomBlock(2)
	for i := 0; i < 200 && !died; i++ {
		var out Outcome
		if i%2 == 0 {
			out = c.Write(0, &a)
		} else {
			out = c.Write(0, &b)
		}
		died = out.Died
	}
	if !died {
		t.Fatal("line never died despite tiny endurance")
	}
	if c.DeadLines() == 0 {
		t.Fatal("dead count not incremented")
	}
	// Writes to the dead line are dropped.
	out := c.Write(0, &a)
	if out.Stored {
		t.Fatal("write to dead line was stored")
	}
	if _, _, err := c.Read(0); err == nil {
		t.Fatal("read of dead line should error")
	}
	if c.Stats().UncorrectableErrors == 0 {
		t.Fatal("uncorrectable errors not counted")
	}
}

func TestCompressionOutlivesBaseline(t *testing.T) {
	// The paper's core claim at the single-line level: with compressed
	// windows + sliding, a line tolerates more cell deaths than ECP-6's 6.
	writeUntilDead := func(sys SystemKind) (writes int, faultsAtDeath float64) {
		cfg := DefaultConfig(sys, testMemory(250, 0.25))
		cfg.StartGapPsi = 1 << 30 // isolate a single line: no movements
		cfg.MaxPlaceRetries = 16
		c := mustController(t, cfg)
		r := rng.New(3)
		for i := 0; i < 100000; i++ {
			data := compressibleBlock(r.Uint64())
			out := c.Write(0, &data)
			if out.Died {
				s := c.Stats()
				return i + 1, s.DeathFaultCells.Mean()
			}
		}
		t.Fatalf("%v: line never died", sys)
		return 0, 0
	}
	baseWrites, baseFaults := writeUntilDead(Baseline)
	compWrites, compFaults := writeUntilDead(CompWF)
	if compWrites <= baseWrites {
		t.Fatalf("Comp+WF died after %d writes, baseline after %d", compWrites, baseWrites)
	}
	if compFaults <= baseFaults {
		t.Fatalf("Comp+WF tolerated %.1f faults at death, baseline %.1f", compFaults, baseFaults)
	}
	// Fig 12: roughly 3x more tolerable faults; require at least 2x here.
	if compFaults < 2*baseFaults {
		t.Fatalf("fault tolerance gain %.2fx < 2x (comp %.1f, base %.1f)",
			compFaults/baseFaults, compFaults, baseFaults)
	}
}

func TestSCHeuristicForcesRawOnUnstableSizes(t *testing.T) {
	cfg := DefaultConfig(Comp, testMemory(1e8, 0.15))
	cfg.StartGapPsi = 1 << 30
	c := mustController(t, cfg)
	// Alternate between a mid-size compressible pattern and a barely
	// compressible one: sizes oscillate, SC should saturate, writes go raw.
	mid := compressibleBlock(5) // ~16-24 bytes (>= Threshold1)
	var big block.Block
	r := rng.New(9)
	for i := 0; i < 12; i++ {
		big.SetWord(i%8, r.Uint64())
	}
	sawRaw := false
	for i := 0; i < 40; i++ {
		var out Outcome
		if i%2 == 0 {
			out = c.Write(0, &mid)
		} else {
			out = c.Write(0, &big)
		}
		if out.Stored && !out.Compressed && out.Size == block.Size {
			sawRaw = true
		}
	}
	if !sawRaw && c.Stats().HeuristicRawWrites == 0 {
		t.Fatal("oscillating sizes never triggered the raw-write heuristic")
	}
}

func TestSCHeuristicKeepsCompressingStableSizes(t *testing.T) {
	cfg := DefaultConfig(Comp, testMemory(1e8, 0.15))
	c := mustController(t, cfg)
	for i := 0; i < 50; i++ {
		data := compressibleBlock(4) // identical size every time
		out := c.Write(0, &data)
		if !out.Compressed {
			t.Fatalf("write %d: stable sizes must stay compressed", i)
		}
	}
	if c.Stats().HeuristicRawWrites != 0 {
		t.Fatal("heuristic fired on stable sizes")
	}
}

func TestAlwaysCompressBelowThreshold1(t *testing.T) {
	cfg := DefaultConfig(Comp, testMemory(1e8, 0.15))
	c := mustController(t, cfg)
	var zero block.Block // compresses to 1 byte << Threshold1
	// Even after artificially saturating SC, tiny sizes stay compressed.
	bank, _ := c.locate(0)
	row := c.banks[bank].sg.Map(0)
	c.banks[bank].meta[row].sc = 3
	out := c.Write(0, &zero)
	if !out.Compressed {
		t.Fatal("sub-Threshold1 write stored raw despite saturated SC")
	}
}

func TestReadErrors(t *testing.T) {
	c := mustController(t, DefaultConfig(Comp, testMemory(1e6, 0.15)))
	if _, _, err := c.Read(0); err == nil {
		t.Fatal("read of never-written line should error")
	}
}

func TestLocatePanicsOutOfRange(t *testing.T) {
	c := mustController(t, DefaultConfig(Comp, testMemory(1e6, 0.15)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var b block.Block
	c.Write(c.LogicalLines(), &b)
}

func TestStartGapMovementPreservesData(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(1e8, 0.15))
	cfg.StartGapPsi = 5 // frequent movements
	c := mustController(t, cfg)
	want := make(map[int]block.Block)
	r := rng.New(11)
	// Fill all lines, then hammer writes to force many gap movements.
	for round := 0; round < 60; round++ {
		for addr := 0; addr < c.LogicalLines(); addr++ {
			var data block.Block
			switch r.Intn(3) {
			case 0:
				data = compressibleBlock(r.Uint64())
			case 1:
				data = randomBlock(r.Uint64())
			default:
				// keep previous data; skip write
				if prev, ok := want[addr]; ok {
					data = prev
				} else {
					data = compressibleBlock(r.Uint64())
				}
			}
			if out := c.Write(addr, &data); out.Stored {
				want[addr] = data
			}
		}
	}
	if c.Stats().GapMovements == 0 {
		t.Fatal("no gap movements happened")
	}
	for addr, w := range want {
		got, _, err := c.Read(addr)
		if err != nil {
			t.Fatalf("read %d after movements: %v", addr, err)
		}
		if !block.Equal(&got, &w) {
			t.Fatalf("line %d corrupted by movements", addr)
		}
	}
}

func TestCompWFResurrection(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(20, 0.1))
	cfg.StartGapPsi = 3
	c := mustController(t, cfg)
	r := rng.New(13)
	// Hammer incompressible data until lines start dying, then switch to
	// highly compressible data; movements should revive some dead lines.
	for i := 0; i < 40000 && c.DeadLines() < 3; i++ {
		addr := r.Intn(c.LogicalLines())
		data := randomBlock(r.Uint64())
		c.Write(addr, &data)
	}
	if c.DeadLines() == 0 {
		t.Skip("endurance too high to kill lines in budget")
	}
	for i := 0; i < 40000 && c.Stats().Resurrections == 0; i++ {
		addr := r.Intn(c.LogicalLines())
		var zero block.Block
		c.Write(addr, &zero)
	}
	if c.Stats().Resurrections == 0 {
		t.Fatal("Comp+WF never resurrected a dead line")
	}
}

func TestCompStaysDeadPermanently(t *testing.T) {
	cfg := DefaultConfig(Comp, testMemory(20, 0.1))
	cfg.StartGapPsi = 3
	c := mustController(t, cfg)
	r := rng.New(13)
	for i := 0; i < 60000 && c.DeadLines() == 0; i++ {
		addr := r.Intn(c.LogicalLines())
		data := randomBlock(r.Uint64())
		c.Write(addr, &data)
	}
	if c.DeadLines() == 0 {
		t.Skip("endurance too high to kill lines in budget")
	}
	before := c.DeadLines()
	for i := 0; i < 20000; i++ {
		addr := r.Intn(c.LogicalLines())
		var zero block.Block
		c.Write(addr, &zero)
	}
	if c.Stats().Resurrections != 0 {
		t.Fatal("Comp must not resurrect lines")
	}
	if c.DeadLines() < before {
		t.Fatal("dead count decreased without resurrection")
	}
}

func TestFNWRoundTripAndInversionCount(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(1e8, 0.15))
	cfg.UseFNW = true
	c := mustController(t, cfg)
	r := rng.New(17)
	for i := 0; i < 300; i++ {
		addr := r.Intn(c.LogicalLines())
		data := randomBlock(r.Uint64())
		if out := c.Write(addr, &data); out.Stored {
			got, _, err := c.Read(addr)
			if err != nil || !block.Equal(&got, &data) {
				t.Fatalf("FNW round trip broken at write %d: %v", i, err)
			}
		}
	}
	if c.Stats().FNWInversions == 0 {
		t.Fatal("random data never triggered an FNW inversion")
	}
}

func TestModelBasedRandomOperations(t *testing.T) {
	// Shadow-model invariant: any line whose last write was Stored and that
	// is not dead must read back the last written value, across all systems
	// and arbitrary operation interleavings.
	for _, sys := range []SystemKind{Baseline, Comp, CompW, CompWF} {
		t.Run(sys.String(), func(t *testing.T) {
			cfg := DefaultConfig(sys, testMemory(3000, 0.2))
			cfg.StartGapPsi = 7
			cfg.IntraCounterBits = 5
			c := mustController(t, cfg)
			r := rng.New(uint64(sys))
			shadow := make(map[int]block.Block)
			stored := make(map[int]bool)
			for op := 0; op < 30000; op++ {
				addr := r.Intn(c.LogicalLines())
				if r.Intn(4) == 0 && stored[addr] {
					got, _, err := c.Read(addr)
					if err != nil {
						// Reads only fail on dead lines.
						continue
					}
					want := shadow[addr]
					if !block.Equal(&got, &want) {
						t.Fatalf("op %d: addr %d read mismatch", op, addr)
					}
					continue
				}
				var data block.Block
				switch r.Intn(4) {
				case 0:
					data = compressibleBlock(r.Uint64())
				case 1:
					data = randomBlock(r.Uint64())
				case 2: // small FPC-friendly integers
					for w := 0; w < 8; w++ {
						data.SetWord(w, uint64(r.Intn(256)))
					}
				default: // sparse update of previous content
					data = shadow[addr]
					data.SetWord(r.Intn(8), r.Uint64())
				}
				out := c.Write(addr, &data)
				if out.Stored {
					shadow[addr] = data
					stored[addr] = true
				} else {
					stored[addr] = false
				}
			}
			// Post-hoc: every stored, live line must match the shadow.
			for addr, ok := range stored {
				if !ok {
					continue
				}
				got, _, err := c.Read(addr)
				if err != nil {
					continue // died after its last store via movement copy
				}
				want := shadow[addr]
				if !block.Equal(&got, &want) {
					t.Fatalf("final check: addr %d mismatch", addr)
				}
			}
		})
	}
}

func TestStatsConsistency(t *testing.T) {
	cfg := DefaultConfig(CompWF, testMemory(500, 0.2))
	cfg.StartGapPsi = 11
	c := mustController(t, cfg)
	r := rng.New(23)
	for i := 0; i < 20000; i++ {
		addr := r.Intn(c.LogicalLines())
		data := compressibleBlock(r.Uint64())
		c.Write(addr, &data)
	}
	s := c.Stats()
	if s.Writes == 0 || s.BitFlips == 0 {
		t.Fatal("no work recorded")
	}
	if s.CompressedWrites > s.Writes {
		t.Fatal("compressed writes exceed total writes")
	}
	if s.DroppedWrites > s.Writes {
		t.Fatal("dropped writes exceed total writes")
	}
	if int(s.DeathFaultCells.N()) < c.DeadLines()-int(s.Resurrections) {
		t.Fatal("death events under-recorded")
	}
	if c.DeadFraction() < 0 || c.DeadFraction() > 1 {
		t.Fatalf("dead fraction = %v", c.DeadFraction())
	}
}

func TestMetadataUpdateFrequencies(t *testing.T) {
	// §III-B: start-pointer updates are rare (rotation or fault-driven
	// sliding only) and encoding updates track size changes, far below
	// one per write for size-stable traffic.
	cfg := DefaultConfig(Comp, testMemory(1e9, 0.15))
	c := mustController(t, cfg)
	for i := 0; i < 5000; i++ {
		data := compressibleBlock(3) // constant content class and size
		data.SetWord(7, data.Word(0)+uint64(i%50))
		c.Write(i%c.LogicalLines(), &data)
	}
	s := c.Stats()
	if s.StartPointerUpdates != 0 {
		t.Errorf("start pointer moved %d times without faults or rotation", s.StartPointerUpdates)
	}
	if s.EncodingUpdates > s.Writes/10 {
		t.Errorf("encoding updated %d times over %d size-stable writes", s.EncodingUpdates, s.Writes)
	}
}

func TestSchemeAccessors(t *testing.T) {
	cfg := DefaultConfig(Comp, testMemory(1e6, 0.15))
	cfg.Scheme = ecp.New(2)
	c := mustController(t, cfg)
	if c.Scheme().Name() != "ECP-2" {
		t.Fatalf("scheme = %s", c.Scheme().Name())
	}
	if c.System() != Comp {
		t.Fatal("system accessor wrong")
	}
	if c.PhysicalLines() != 18 || c.LogicalLines() != 16 {
		t.Fatalf("lines: phys %d logical %d", c.PhysicalLines(), c.LogicalLines())
	}
}

func BenchmarkWriteCompressible(b *testing.B) {
	cfg := DefaultConfig(CompWF, testMemory(1e9, 0.15))
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	blocks := make([]block.Block, 64)
	for i := range blocks {
		blocks[i] = compressibleBlock(r.Uint64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(i%c.LogicalLines(), &blocks[i%len(blocks)])
	}
}

func BenchmarkWriteIncompressible(b *testing.B) {
	cfg := DefaultConfig(CompWF, testMemory(1e9, 0.15))
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	blocks := make([]block.Block, 64)
	for i := range blocks {
		blocks[i] = randomBlock(r.Uint64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Write(i%c.LogicalLines(), &blocks[i%len(blocks)])
	}
}
