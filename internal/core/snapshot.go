package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pcmcomp/internal/compress"
)

// Checkpointing: WriteSnapshot captures the controller's complete
// simulation state — wear-leveling registers, per-line metadata, and the
// physical PCM state — so long lifetime runs can pause and resume.
// ReadSnapshot restores into a controller built from the identical Config;
// continued simulation is then bit-for-bit identical to an uninterrupted
// run (endurance sampling is deterministic in (seed, address), and the
// controller itself holds no other randomness). Telemetry counters
// (Stats) are intentionally not part of a snapshot: they reset on restore.

const ctrlSnapshotMagic = "PCMC"

// WriteSnapshot serializes the controller state to w.
func (c *Controller) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ctrlSnapshotMagic); err != nil {
		return fmt.Errorf("core: write snapshot magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(c.banks))); err != nil {
		return err
	}
	for i := range c.banks {
		bs := &c.banks[i]
		start, gap, count := bs.sg.State()
		rcount, roffset, rrot := bs.rot.State()
		for _, v := range []uint64{
			uint64(start), uint64(gap), uint64(count),
			uint64(rcount), uint64(roffset), uint64(rrot),
			uint64(len(bs.meta)),
		} {
			if err := writeUvarint(v); err != nil {
				return err
			}
		}
		for j := range bs.meta {
			meta := &bs.meta[j]
			flags := uint64(0)
			if meta.dead {
				flags |= 1
			}
			for _, v := range []uint64{
				uint64(meta.start), uint64(meta.enc), uint64(meta.sc),
				uint64(meta.size), uint64(meta.prevCompSize), flags,
				uint64(len(meta.payload)),
			} {
				if err := writeUvarint(v); err != nil {
					return err
				}
			}
			if _, err := bw.Write(meta.payload); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flush snapshot: %w", err)
	}
	return c.mem.WriteSnapshot(w)
}

// ReadSnapshot restores state serialized by WriteSnapshot. c must be a
// controller freshly built from the same Config used at snapshot time. On
// error the controller may be partially restored and must be discarded.
func (c *Controller) ReadSnapshot(r io.Reader) error {
	// The controller section is parsed through a byte-at-a-time reader so
	// the memory section that follows starts at the right offset.
	br := &byteReader{r: r}
	var magic [len(ctrlSnapshotMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("core: read snapshot magic: %w", err)
	}
	if string(magic[:]) != ctrlSnapshotMagic {
		return fmt.Errorf("core: bad snapshot magic %q", magic)
	}
	banks, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("core: read bank count: %w", err)
	}
	if banks != uint64(len(c.banks)) {
		return fmt.Errorf("core: snapshot has %d banks, controller %d", banks, len(c.banks))
	}
	c.deadCount = 0
	for i := range c.banks {
		bs := &c.banks[i]
		var vals [7]uint64
		for vi := range vals {
			if vals[vi], err = binary.ReadUvarint(br); err != nil {
				return fmt.Errorf("core: read bank %d header: %w", i, err)
			}
		}
		if err := bs.sg.RestoreState(int(vals[0]), int(vals[1]), int(vals[2])); err != nil {
			return fmt.Errorf("core: bank %d: %w", i, err)
		}
		if err := bs.rot.RestoreState(uint32(vals[3]), int(vals[4]), int(vals[5])); err != nil {
			return fmt.Errorf("core: bank %d: %w", i, err)
		}
		if vals[6] != uint64(len(bs.meta)) {
			return fmt.Errorf("core: snapshot bank %d has %d rows, controller %d",
				i, vals[6], len(bs.meta))
		}
		for j := range bs.meta {
			var mv [7]uint64
			for vi := range mv {
				if mv[vi], err = binary.ReadUvarint(br); err != nil {
					return fmt.Errorf("core: read bank %d row %d: %w", i, j, err)
				}
			}
			if mv[1] >= compress.NumEncodings && mv[3] != 0 {
				return fmt.Errorf("core: bank %d row %d has invalid encoding %d", i, j, mv[1])
			}
			if mv[6] > 64 {
				return fmt.Errorf("core: bank %d row %d payload %dB too large", i, j, mv[6])
			}
			meta := &bs.meta[j]
			meta.start = uint8(mv[0])
			meta.enc = compress.Encoding(mv[1])
			meta.sc = uint8(mv[2])
			meta.size = uint8(mv[3])
			meta.prevCompSize = uint8(mv[4])
			meta.dead = mv[5]&1 == 1
			if meta.dead {
				c.deadCount++
			}
			meta.payload = make([]byte, mv[6])
			if _, err := io.ReadFull(br, meta.payload); err != nil {
				return fmt.Errorf("core: read bank %d row %d payload: %w", i, j, err)
			}
		}
	}
	c.stats = Stats{}
	return c.mem.ReadSnapshot(br)
}

// byteReader adapts an io.Reader to io.ByteReader without buffering ahead,
// so the stream position stays exact between sections.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}
