package core

// Ablation tests for the design choices DESIGN.md §5 calls out: the SC
// heuristic, the ECC scheme swap, Flip-N-Write, and dead-line resurrection.
// Each checks the *direction* of the effect at miniature scale.

import (
	"testing"

	"pcmcomp/internal/block"
	"pcmcomp/internal/ecc/aegis"
	"pcmcomp/internal/ecc/safer"
	"pcmcomp/internal/rng"
)

// oscillatingWriter alternates between a 16-byte (B8D1) and a 40-byte
// (B8D4) encoding of nearly identical raw data: one word toggles between a
// small and a large delta. Raw storage flips only that word's bits, but
// compressed storage re-lays-out the whole delta array every write — the
// exact entropy pathology the Fig 8 heuristic suppresses.
func oscillatingWriter(t *testing.T, c *Controller, writes int) (flips uint64) {
	t.Helper()
	r := rng.New(5)
	base := uint64(0x0123_4567_89ab_0000)
	for i := 0; i < writes; i++ {
		var data block.Block
		data.SetWord(0, base)
		for w := 1; w < 7; w++ {
			data.SetWord(w, base+uint64(w))
		}
		if i%2 == 0 {
			data.SetWord(7, base+uint64(r.Intn(100))) // fits 1-byte delta
		} else {
			data.SetWord(7, base+1<<25+uint64(r.Intn(100))) // needs 4 bytes
		}
		// Odd modulus so every line sees both sizes alternately.
		c.Write(i%(c.LogicalLines()-1), &data)
	}
	return c.Stats().BitFlips
}

func TestAblationSCHeuristicReducesFlips(t *testing.T) {
	build := func(useSC bool) *Controller {
		cfg := DefaultConfig(Comp, testMemory(1e9, 0.15))
		cfg.UseSCHeuristic = useSC
		c := mustController(t, cfg)
		return c
	}
	const writes = 4000
	withSC := oscillatingWriter(t, build(true), writes)
	withoutSC := oscillatingWriter(t, build(false), writes)
	if withSC >= withoutSC {
		t.Errorf("SC heuristic should cut flips on size-unstable data: with=%d without=%d",
			withSC, withoutSC)
	}
}

func TestAblationFNWReducesFlips(t *testing.T) {
	run := func(useFNW bool) uint64 {
		cfg := DefaultConfig(Baseline, testMemory(1e9, 0.15))
		cfg.UseFNW = useFNW
		c := mustController(t, cfg)
		r := rng.New(9)
		for i := 0; i < 3000; i++ {
			data := randomBlock(r.Uint64())
			c.Write(i%c.LogicalLines(), &data)
		}
		return c.Stats().BitFlips
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("FNW should reduce flips on random data: with=%d without=%d", with, without)
	}
	// FNW bounds flips to half the window per write.
	cfg := DefaultConfig(Baseline, testMemory(1e9, 0.15))
	cfg.UseFNW = true
	c := mustController(t, cfg)
	r := rng.New(10)
	for i := 0; i < 200; i++ {
		data := randomBlock(r.Uint64())
		out := c.Write(0, &data)
		if out.FlipsWritten > block.Bits/2 {
			t.Fatalf("FNW wrote %d flips > half the line", out.FlipsWritten)
		}
	}
}

func TestAblationSchemeSwapExtendsLife(t *testing.T) {
	// Under Comp+WF, SAFER-32 and Aegis should tolerate at least as many
	// faults per line as ECP-6 (Fig 9's partitioning argument).
	faultsAtDeath := func(schemeName string) float64 {
		cfg := DefaultConfig(CompWF, testMemory(250, 0.25))
		cfg.StartGapPsi = 1 << 30
		cfg.MaxPlaceRetries = 16
		switch schemeName {
		case "safer":
			cfg.Scheme = safer.New(5)
		case "aegis":
			cfg.Scheme = aegis.MustNew(17, 31)
		}
		c := mustController(t, cfg)
		r := rng.New(3)
		for i := 0; i < 200000; i++ {
			data := compressibleBlock(r.Uint64())
			if out := c.Write(0, &data); out.Died {
				s := c.Stats()
				return s.DeathFaultCells.Mean()
			}
		}
		t.Fatalf("%s: line never died", schemeName)
		return 0
	}
	ecpF := faultsAtDeath("ecp")
	saferF := faultsAtDeath("safer")
	aegisF := faultsAtDeath("aegis")
	if saferF < ecpF*0.9 {
		t.Errorf("SAFER died at %.0f faults, ECP at %.0f; partition schemes should not be worse", saferF, ecpF)
	}
	if aegisF < ecpF*0.9 {
		t.Errorf("Aegis died at %.0f faults, ECP at %.0f", aegisF, ecpF)
	}
}

func TestAblationResurrectionIncreasesUsableCapacity(t *testing.T) {
	// With resurrection (Comp+WF) the dead fraction under a compressible
	// late phase must drop below the no-resurrection system's.
	run := func(sys SystemKind) float64 {
		cfg := DefaultConfig(sys, testMemory(25, 0.1))
		cfg.StartGapPsi = 3
		c := mustController(t, cfg)
		r := rng.New(13)
		// Phase 1: incompressible writes kill lines.
		for i := 0; i < 30000; i++ {
			data := randomBlock(r.Uint64())
			c.Write(r.Intn(c.LogicalLines()), &data)
		}
		// Phase 2: highly compressible writes.
		var zero block.Block
		for i := 0; i < 30000; i++ {
			c.Write(r.Intn(c.LogicalLines()), &zero)
		}
		return c.DeadFraction()
	}
	withF := run(CompWF)
	withoutF := run(CompW)
	if withF > withoutF {
		t.Errorf("resurrection should not leave more dead lines: Comp+WF %.2f vs Comp+W %.2f",
			withF, withoutF)
	}
}

func TestAblationIntraStepSizeSweep(t *testing.T) {
	// Any step size must keep the controller correct (read-back holds);
	// the paper settled on 1 byte after a sensitivity analysis.
	for _, step := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig(CompW, testMemory(1e7, 0.15))
		cfg.IntraStepBytes = step
		cfg.IntraCounterBits = 4
		c := mustController(t, cfg)
		r := rng.New(uint64(step))
		for i := 0; i < 2000; i++ {
			addr := r.Intn(c.LogicalLines())
			data := compressibleBlock(r.Uint64())
			if out := c.Write(addr, &data); out.Stored {
				got, _, err := c.Read(addr)
				if err != nil || !block.Equal(&got, &data) {
					t.Fatalf("step %d: read-back broken at write %d: %v", step, i, err)
				}
			}
		}
	}
}

func TestAblationThresholdSweep(t *testing.T) {
	// The SC heuristic must behave sanely across threshold settings: with
	// Threshold1=64 every write is "highly compressible" (always
	// compress); the raw-write path must never fire.
	cfg := DefaultConfig(Comp, testMemory(1e9, 0.15))
	cfg.Threshold1 = 64
	c := mustController(t, cfg)
	r := rng.New(21)
	for i := 0; i < 2000; i++ {
		data := compressibleBlock(r.Uint64())
		c.Write(i%c.LogicalLines(), &data)
	}
	if c.Stats().HeuristicRawWrites != 0 {
		t.Error("Threshold1=64 must disable the raw-write path for compressible data")
	}

	// Threshold1=1 and Threshold2=1: maximal SC pressure; controller must
	// remain correct and still store data.
	cfg = DefaultConfig(Comp, testMemory(1e9, 0.15))
	cfg.Threshold1 = 1
	cfg.Threshold2 = 1
	c = mustController(t, cfg)
	stored := 0
	for i := 0; i < 2000; i++ {
		data := compressibleBlock(r.Uint64())
		if out := c.Write(i%c.LogicalLines(), &data); out.Stored {
			stored++
		}
	}
	if stored != 2000 {
		t.Errorf("only %d/2000 writes stored under tight thresholds", stored)
	}
}
