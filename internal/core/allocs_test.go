package core

import (
	"testing"

	"pcmcomp/internal/pcm"
	"pcmcomp/internal/workload"
)

// TestWriteHotAllocs guards the allocation-free write kernel: after
// warmup (lines materialized, per-line payload buffers grown, compressor
// scratch sized), a steady-state Comp+WF Controller.Write must never
// touch the heap. It is the testing counterpart of BenchmarkWriteHot and
// of cmd/bench's -check gate; the setup mirrors internal/benchmarks
// deliberately, with endurance high enough that no cell dies mid-run
// (NewFaults appends are the one permitted, fault-driven allocation).
func TestWriteHotAllocs(t *testing.T) {
	mem := pcm.Config{
		Geometry: pcm.Geometry{
			Channels: 1, DIMMsPerChannel: 1, RanksPerDIMM: 1,
			BanksPerRank: 4, LinesPerBank: 33,
		},
		Endurance: pcm.Endurance{Mean: 1e9, CoV: 0.15},
		Seed:      1,
	}
	ctrl, err := New(DefaultConfig(CompWF, mem))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, ctrl.LogicalLines(), 1)
	if err != nil {
		t.Fatal(err)
	}
	events := gen.GenerateTrace(2048)
	logical := ctrl.LogicalLines()
	for i := range events {
		ctrl.Write(events[i].Addr%logical, &events[i].Data)
	}

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		ev := &events[i%len(events)]
		ctrl.Write(ev.Addr%logical, &ev.Data)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Write allocates %.2f times per op, want 0", allocs)
	}
}
