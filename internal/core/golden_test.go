package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"pcmcomp/internal/pcm"
	"pcmcomp/internal/trace"
	"pcmcomp/internal/workload"
)

// The golden determinism suite pins the per-write kernel bit-for-bit: it
// replays a fixed-seed synthetic trace through each of the paper's four
// systems and compares an exhaustive digest of every Outcome plus the final
// controller counters against committed snapshots. Any change to the write
// pipeline — compression candidate order, placement, differential-write
// accounting, wear-leveling interleaving — shows up as a digest mismatch.
//
// Regenerate after an intentional behavior change with
//
//	go test ./internal/core -run TestGoldenReplay -update
//
// and inspect the diff of testdata/golden_core.json before committing.

var updateGolden = flag.Bool("update", false, "rewrite golden files with current outputs")

const (
	goldenSeed   = 20170601 // DSN'17
	goldenWrites = 24000
	// The replay is two-phase: a low-compressibility first half (full-size
	// windows wear lines out and kill them) followed by a highly
	// compressible second half (tiny windows let Comp+WF resurrect them).
	goldenKillApp   = "lbm"
	goldenReviveApp = "milc"
)

// goldenMemory is a deliberately tiny, low-endurance substrate so that the
// replay drives lines through death (and, under Comp+WF, resurrection)
// within a unit-test budget.
func goldenMemory() pcm.Config {
	return pcm.Config{
		Geometry: pcm.Geometry{
			Channels: 1, DIMMsPerChannel: 1, RanksPerDIMM: 1,
			BanksPerRank: 2, LinesPerBank: 17,
		},
		Endurance: pcm.Endurance{Mean: 120, CoV: 0.15},
		Seed:      goldenSeed,
	}
}

func goldenTrace(t *testing.T, app string) []trace.Event {
	t.Helper()
	prof, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 64, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	return gen.GenerateTrace(4096)
}

// goldenRecord is the committed per-system digest. Float-valued statistics
// are stored as IEEE-754 bit patterns so the comparison is exact, not
// epsilon-based.
type goldenRecord struct {
	System       string `json:"system"`
	Writes       int    `json:"writes"`
	OutcomeHash  string `json:"outcomeHash"`
	Stored       int    `json:"stored"`
	Compressed   int    `json:"compressed"`
	Died         int    `json:"died"`
	Resurrected  int    `json:"resurrected"`
	FlipsNeeded  int    `json:"flipsNeeded"`
	FlipsWritten int    `json:"flipsWritten"`
	StuckFlips   int    `json:"stuckFlips"`
	NewFaults    int    `json:"newFaults"`
	SizeSum      int    `json:"sizeSum"`
	WindowSum    int    `json:"windowSum"`
	DeadLines    int    `json:"deadLines"`

	StatWrites          uint64 `json:"statWrites"`
	StatDropped         uint64 `json:"statDropped"`
	StatCompressed      uint64 `json:"statCompressed"`
	StatHeuristicRaw    uint64 `json:"statHeuristicRaw"`
	StatBitFlips        uint64 `json:"statBitFlips"`
	StatSetPulses       uint64 `json:"statSetPulses"`
	StatResetPulses     uint64 `json:"statResetPulses"`
	StatNewFaults       uint64 `json:"statNewFaults"`
	StatUncorrectable   uint64 `json:"statUncorrectable"`
	StatGapMovements    uint64 `json:"statGapMovements"`
	StatRotations       uint64 `json:"statRotations"`
	StatResurrections   uint64 `json:"statResurrections"`
	StatStartPtrUpdates uint64 `json:"statStartPtrUpdates"`
	StatEncUpdates      uint64 `json:"statEncUpdates"`
	DeathCellsN         int64  `json:"deathCellsN"`
	DeathCellsMeanBits  uint64 `json:"deathCellsMeanBits"`
	DeathCellsMinBits   uint64 `json:"deathCellsMinBits"`
	DeathCellsMaxBits   uint64 `json:"deathCellsMaxBits"`
}

// replayGolden runs the fixed two-phase trace through a fresh controller
// and digests every outcome.
func replayGolden(t *testing.T, system SystemKind, kill, revive []trace.Event) goldenRecord {
	t.Helper()
	cfg := DefaultConfig(system, goldenMemory())
	// A short gap-movement period gives Comp+WF frequent retry opportunities
	// on dead lines within the write budget.
	cfg.StartGapPsi = 20
	ctrl := mustController(t, cfg)
	logical := ctrl.LogicalLines()

	h := fnv.New64a()
	var buf [8]byte
	hashInt := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	hashBool := func(v bool) {
		if v {
			hashInt(1)
		} else {
			hashInt(0)
		}
	}

	rec := goldenRecord{System: system.String(), Writes: goldenWrites}
	for w := 0; w < goldenWrites; w++ {
		ev := &kill[w%len(kill)]
		if w >= goldenWrites/2 {
			ev = &revive[w%len(revive)]
		}
		out := ctrl.Write(ev.Addr%logical, &ev.Data)

		hashBool(out.Stored)
		hashBool(out.Compressed)
		hashInt(out.Size)
		hashInt(out.WindowStart)
		hashInt(out.FlipsNeeded)
		hashInt(out.FlipsWritten)
		hashInt(out.StuckFlips)
		hashInt(out.NewFaults)
		hashBool(out.Died)
		hashBool(out.Resurrected)

		if out.Stored {
			rec.Stored++
			rec.SizeSum += out.Size
			rec.WindowSum += out.WindowStart
		}
		if out.Compressed {
			rec.Compressed++
		}
		if out.Died {
			rec.Died++
		}
		if out.Resurrected {
			rec.Resurrected++
		}
		rec.FlipsNeeded += out.FlipsNeeded
		rec.FlipsWritten += out.FlipsWritten
		rec.StuckFlips += out.StuckFlips
		rec.NewFaults += out.NewFaults
	}
	rec.OutcomeHash = fmt.Sprintf("%016x", h.Sum64())
	rec.DeadLines = ctrl.DeadLines()

	s := ctrl.Stats()
	rec.StatWrites = s.Writes
	rec.StatDropped = s.DroppedWrites
	rec.StatCompressed = s.CompressedWrites
	rec.StatHeuristicRaw = s.HeuristicRawWrites
	rec.StatBitFlips = s.BitFlips
	rec.StatSetPulses = s.SetPulses
	rec.StatResetPulses = s.ResetPulses
	rec.StatNewFaults = s.NewFaults
	rec.StatUncorrectable = s.UncorrectableErrors
	rec.StatGapMovements = s.GapMovements
	rec.StatRotations = s.Rotations
	rec.StatResurrections = s.Resurrections
	rec.StatStartPtrUpdates = s.StartPointerUpdates
	rec.StatEncUpdates = s.EncodingUpdates
	rec.DeathCellsN = s.DeathFaultCells.N()
	rec.DeathCellsMeanBits = math.Float64bits(s.DeathFaultCells.Mean())
	rec.DeathCellsMinBits = math.Float64bits(s.DeathFaultCells.Min())
	rec.DeathCellsMaxBits = math.Float64bits(s.DeathFaultCells.Max())
	return rec
}

func goldenPath() string { return filepath.Join("testdata", "golden_core.json") }

func loadGolden(t *testing.T) map[string]goldenRecord {
	t.Helper()
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	var m map[string]goldenRecord
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	return m
}

// TestGoldenReplay asserts that the kernel reproduces the committed digests
// bit-for-bit for all four systems.
func TestGoldenReplay(t *testing.T) {
	kill := goldenTrace(t, goldenKillApp)
	revive := goldenTrace(t, goldenReviveApp)
	systems := []SystemKind{Baseline, Comp, CompW, CompWF}

	got := make(map[string]goldenRecord, len(systems))
	for _, sys := range systems {
		got[sys.String()] = replayGolden(t, sys, kill, revive)
	}

	// The suite is only a safety net if it reaches the interesting states.
	// Resurrections ride on Start-Gap moves, so they surface in the stats
	// counter, not in demand-write Outcomes.
	if rec := got[CompWF.String()]; rec.Died == 0 || rec.StatResurrections == 0 {
		t.Fatalf("golden workload too gentle: Comp+WF died=%d resurrections=%d; retune goldenMemory",
			rec.Died, rec.StatResurrections)
	}
	if rec := got[Baseline.String()]; rec.Died == 0 {
		t.Fatalf("golden workload too gentle: Baseline saw no deaths")
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath())
		return
	}

	want := loadGolden(t)
	for _, sys := range systems {
		name := sys.String()
		if got[name] != want[name] {
			t.Errorf("%s diverged from golden:\n got %+v\nwant %+v", name, got[name], want[name])
		}
	}
}

// TestGoldenReplayAcrossGOMAXPROCS re-runs the Comp+WF replay under
// GOMAXPROCS=1 and asserts the digest is identical to the committed golden:
// the kernel must not depend on scheduler parallelism in any way.
func TestGoldenReplayAcrossGOMAXPROCS(t *testing.T) {
	if *updateGolden {
		t.Skip("golden update run")
	}
	kill := goldenTrace(t, goldenKillApp)
	revive := goldenTrace(t, goldenReviveApp)
	want := loadGolden(t)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rec := replayGolden(t, CompWF, kill, revive)
	if rec != want[CompWF.String()] {
		t.Errorf("Comp+WF digest differs under GOMAXPROCS=1:\n got %+v\nwant %+v",
			rec, want[CompWF.String()])
	}
}
