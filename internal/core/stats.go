package core

import (
	"pcmcomp/internal/pcm"
	"pcmcomp/internal/stats"
)

// Stats aggregates the controller's lifetime-relevant counters. All fields
// are cumulative since construction.
type Stats struct {
	// Writes counts physical line writes (demand write-backs + Start-Gap
	// copies). DroppedWrites of those hit dead lines and stored nothing.
	Writes        uint64
	DroppedWrites uint64
	// CompressedWrites counts stored-compressed writes;
	// HeuristicRawWrites counts writes the Fig 8 flow forced to raw.
	CompressedWrites   uint64
	HeuristicRawWrites uint64
	// Reads and CompressedReads count controller read operations.
	Reads           uint64
	CompressedReads uint64
	// BitFlips counts cells actually programmed (after DW and, when
	// enabled, FNW); SetPulses/ResetPulses split them for energy
	// accounting; NewFaults counts cells worn out.
	BitFlips    uint64
	SetPulses   uint64
	ResetPulses uint64
	NewFaults   uint64
	// UncorrectableErrors counts writes that could not be stored — the
	// paper's headline reliability metric.
	UncorrectableErrors uint64
	// GapMovements and Rotations count inter-/intra-line wear-leveling
	// activity; Resurrections counts dead lines revived by Comp+WF.
	GapMovements  uint64
	Rotations     uint64
	Resurrections uint64
	// FNWInversions counts Flip-N-Write complement writes.
	FNWInversions uint64
	// StartPointerUpdates and EncodingUpdates count per-line metadata
	// rewrites, backing §III-B's claim that metadata wear is negligible:
	// the start pointer changes only on rotation/sliding and the coding
	// bits only when the compressed size class changes.
	StartPointerUpdates uint64
	EncodingUpdates     uint64
	// EncodedWrites counts window writes that passed through the
	// write-encoder stage; EncoderFlipsSaved is the cells the stage
	// avoided programming versus the unencoded writes (negative when an
	// energy-minimizing encoder traded extra SETs for expensive RESETs),
	// and EncoderEnergySavedPJ the corresponding pulse-energy saving.
	EncodedWrites        uint64
	EncoderFlipsSaved    int64
	EncoderEnergySavedPJ float64
	// DeathFaultCells tracks, over line-death events, how many faulty
	// cells the line had accumulated when it died (Fig 12's metric).
	DeathFaultCells stats.Running
}

// WriteEnergyPJ prices the accumulated SET/RESET pulses under the default
// energy model — the per-scheme write-energy figure sweeps report.
func (s Stats) WriteEnergyPJ() float64 {
	m := pcm.DefaultEnergyModel()
	return m.SETpJ*float64(s.SetPulses) + m.RESETpJ*float64(s.ResetPulses)
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats { return c.stats }
