package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"pcmcomp/internal/obs"
	"pcmcomp/internal/pcmclient"
)

// Options tune the coordinator's robustness machinery. The zero value gets
// sensible defaults from New.
type Options struct {
	// MaxRetries is how many times a failed shard is re-dispatched (to a
	// different backend when one is available) before the sweep fails
	// (default 2).
	MaxRetries int
	// ShardTimeout bounds one dispatch attempt; an expired attempt counts
	// as a failure and is retried (default 15 minutes).
	ShardTimeout time.Duration
	// HedgeAfter launches a duplicate of a still-running shard on a second
	// backend once this much time has passed — the first result wins and
	// the loser is canceled. Zero disables hedging.
	HedgeAfter time.Duration
	// Concurrency bounds shards in flight across the fleet (default
	// 2 x backend count).
	Concurrency int
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects the backend
	// before a half-open trial dispatch is allowed (default 15s).
	BreakerCooldown time.Duration
}

func (o Options) withDefaults(backends int) Options {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 2
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 15 * time.Minute
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2 * backends
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 15 * time.Second
	}
	return o
}

// backendState pairs a Backend with its load counter and circuit breaker.
type backendState struct {
	b        Backend
	inflight int64 // guarded by the owning coordinator's mu

	mu          sync.Mutex
	consecFails int
	openUntil   time.Time // zero = circuit closed
}

// available reports whether the picker may use this backend: the circuit is
// closed, or open but past its cooldown (half-open trial).
func (bs *backendState) available(now time.Time) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.openUntil.IsZero() || now.After(bs.openUntil)
}

func (bs *backendState) healthy() bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.openUntil.IsZero()
}

// onSuccess closes the circuit.
func (bs *backendState) onSuccess() {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.consecFails = 0
	bs.openUntil = time.Time{}
}

// onFailure counts a failure and opens the circuit at the threshold,
// reporting whether this call opened it.
func (bs *backendState) onFailure(threshold int, cooldown time.Duration, now time.Time) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.consecFails++
	if bs.consecFails < threshold {
		return false
	}
	opened := bs.openUntil.IsZero()
	bs.openUntil = now.Add(cooldown)
	return opened
}

// forceOpen opens the circuit immediately (failed health probe), reporting
// whether it was a transition.
func (bs *backendState) forceOpen(cooldown time.Duration, now time.Time) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	opened := bs.openUntil.IsZero()
	bs.openUntil = now.Add(cooldown)
	return opened
}

// Coordinator dispatches sweep shards across a fleet of backends with
// weighted least-loaded selection, per-shard retry, hedged duplicates for
// stragglers, and per-backend circuit breaking. It is safe for concurrent
// Sweep calls; the backends' load and health are shared across sweeps.
type Coordinator struct {
	opts     Options
	mu       sync.Mutex // guards inflight counters during selection
	backends []*backendState
	metrics  Metrics
}

// New builds a coordinator over the given fleet.
func New(backends []Backend, opts Options) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, errors.New("cluster: at least one backend is required")
	}
	c := &Coordinator{opts: opts.withDefaults(len(backends))}
	for _, b := range backends {
		c.backends = append(c.backends, &backendState{b: b})
	}
	return c, nil
}

// Metrics returns a snapshot of the dispatch counters.
func (c *Coordinator) Metrics() MetricsSnapshot { return c.metrics.Snapshot() }

// Backends reports each backend's current health and load, in registration
// order.
func (c *Coordinator) Backends() []BackendStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]BackendStatus, len(c.backends))
	for i, bs := range c.backends {
		bs.mu.Lock()
		out[i] = BackendStatus{
			Name:             bs.b.Name(),
			Weight:           bs.b.Weight(),
			Inflight:         bs.inflight,
			Healthy:          bs.openUntil.IsZero(),
			ConsecutiveFails: bs.consecFails,
		}
		bs.mu.Unlock()
	}
	return out
}

// pick acquires the least-loaded available backend (load = (inflight+1) /
// weight), skipping exclude. When every circuit is open it falls back to
// the least-loaded backend anyway — a degraded fleet should limp, not
// deadlock. Returns nil only when exclusion leaves no candidate. The
// returned backend's inflight count is already incremented; release it
// with c.release.
func (c *Coordinator) pick(exclude *backendState) *backendState {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	best := c.pickLocked(exclude, true, now)
	if best == nil {
		best = c.pickLocked(exclude, false, now)
	}
	if best != nil {
		best.inflight++
	}
	return best
}

func (c *Coordinator) pickLocked(exclude *backendState, needAvailable bool, now time.Time) *backendState {
	var best *backendState
	var bestLoad float64
	for _, bs := range c.backends {
		if bs == exclude {
			continue
		}
		if needAvailable && !bs.available(now) {
			continue
		}
		load := float64(bs.inflight+1) / bs.b.Weight()
		if best == nil || load < bestLoad {
			best, bestLoad = bs, load
		}
	}
	return best
}

// release undoes a pick's inflight increment.
func (c *Coordinator) release(bs *backendState) {
	c.mu.Lock()
	bs.inflight--
	c.mu.Unlock()
}

// CheckAll probes every backend once and updates the breakers: a healthy
// probe closes a backend's circuit, a failed one opens it.
func (c *Coordinator) CheckAll(ctx context.Context) {
	now := time.Now()
	for _, bs := range c.backends {
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := bs.b.Check(pctx)
		cancel()
		if err != nil {
			c.metrics.probeFail.Add(1)
			if bs.forceOpen(c.opts.BreakerCooldown, now) {
				c.metrics.breakerOpens.Add(1)
			}
			continue
		}
		c.metrics.probeOK.Add(1)
		bs.onSuccess()
	}
}

// ReportProbe feeds an out-of-band health observation for one backend
// into its breaker — the fleet health plane's metric scrapes double as
// probes this way, so a backend whose /metrics stops answering is
// sidelined from dispatch without waiting for the next HealthLoop tick.
// Unknown names are ignored.
func (c *Coordinator) ReportProbe(name string, err error) {
	for _, bs := range c.backends {
		if bs.b.Name() != name {
			continue
		}
		if err != nil {
			c.metrics.probeFail.Add(1)
			if bs.forceOpen(c.opts.BreakerCooldown, time.Now()) {
				c.metrics.breakerOpens.Add(1)
			}
		} else {
			c.metrics.probeOK.Add(1)
			bs.onSuccess()
		}
		return
	}
}

// HealthLoop probes the fleet every interval until the context is
// canceled. Run it as a goroutine alongside long-lived coordinators so a
// crashed backend is sidelined between sweeps and a recovered one is
// readmitted without waiting for a half-open trial to fail over to it.
func (c *Coordinator) HealthLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.CheckAll(ctx)
		}
	}
}

// Shard event types, as emitted through SweepHooks.OnEvent and recorded
// on a sweep's flight-recorder timeline.
const (
	EventDispatch    = "shard_dispatch"     // an attempt launched on a backend
	EventRetry       = "shard_retry"        // a failed shard is being re-dispatched
	EventHedge       = "shard_hedge"        // a straggler got a duplicate dispatch
	EventHedgeCancel = "shard_hedge_cancel" // a losing duplicate was reclaimed
	EventShardDone   = "shard_done"         // a shard's result is in
	EventShardFailed = "shard_failed"       // a shard exhausted its retries
)

// ShardEvent is one scheduling decision, reported as it happens so the
// caller can attribute a sweep's behaviour per shard: which backend ran
// it, why it was retried or hedged, and what failed.
type ShardEvent struct {
	Time    time.Time `json:"time"`
	Type    string    `json:"type"`
	Shard   int       `json:"shard"`
	Seed    uint64    `json:"seed"`
	Scheme  string    `json:"scheme,omitempty"`
	Backend string    `json:"backend,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Err     string    `json:"error,omitempty"`
}

// SweepHooks are the optional per-sweep observers. OnEvent must be safe
// for concurrent invocation — shards complete in parallel. OnProgress
// calls are serialized by the coordinator, so the hook may write to a
// shared sink without its own locking.
type SweepHooks struct {
	// OnProgress is invoked after every shard completion with the done and
	// total shard counts; calls are serialized and done is strictly
	// increasing.
	OnProgress func(done, total int)
	// OnEvent observes every scheduling decision (dispatch, retry, hedge,
	// hedge cancel, completion) as it happens.
	OnEvent func(ev ShardEvent)
}

// emit reports one event through the hook, stamping the time.
func (h *SweepHooks) emit(typ string, sh shard, backend string, attempt int, err error) {
	if h == nil || h.OnEvent == nil {
		return
	}
	ev := ShardEvent{
		Time: time.Now(), Type: typ, Shard: sh.index, Seed: sh.seed,
		Scheme: sh.scheme, Backend: backend, Attempt: attempt,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	h.OnEvent(ev)
}

// Sweep shards the request across the fleet and returns the merged result.
// onProgress (optional) is invoked after every shard completion with the
// done and total shard counts. Sweep fails only when a shard has exhausted
// its retries; the error then carries the first such shard's cause.
func (c *Coordinator) Sweep(ctx context.Context, req SweepRequest, onProgress func(done, total int)) (*SweepResult, error) {
	return c.SweepWithHooks(ctx, req, SweepHooks{OnProgress: onProgress})
}

// SweepWithHooks is Sweep with full per-shard event observation. When the
// context carries an obs ring and span, each shard contributes a "shard"
// span (child of the caller's span) with one "dispatch" span per attempt,
// so a traced sweep shows exactly where every shard ran and how long each
// attempt took. Tracing and hooks only observe scheduling — the merged
// result is byte-identical with or without them.
func (c *Coordinator) SweepWithHooks(ctx context.Context, req SweepRequest, hooks SweepHooks) (*SweepResult, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	shards, err := req.shards()
	if err != nil {
		return nil, err
	}

	raw := make([]json.RawMessage, len(shards))
	errs := make([]error, len(shards))
	// Progress calls are serialized under a mutex: hooks may write to
	// shared sinks (pcmctl prints to one stderr), and serializing also
	// keeps the reported done counts strictly monotonic.
	var progressMu sync.Mutex
	done := 0
	sem := make(chan struct{}, c.opts.Concurrency)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			raw[i], errs[i] = c.runShard(ctx, shards[i], &hooks)
			if hooks.OnProgress != nil {
				progressMu.Lock()
				done++
				hooks.OnProgress(done, len(shards))
				progressMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d (seed %d): %w", i, shards[i].seed, err)
		}
	}
	return merge(&req, raw)
}

// permanent reports whether an attempt error would recur on any backend, so
// re-dispatching is pointless: the request itself is bad (4xx) or the
// computation deterministically failed on a healthy backend.
func permanent(err error) bool {
	var apiErr *pcmclient.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 400 && apiErr.StatusCode < 500
	}
	var jobErr *pcmclient.JobFailed
	return errors.As(err, &jobErr)
}

// runShard drives one shard to completion: dispatch, hedge stragglers, and
// re-dispatch on failure up to MaxRetries times.
func (c *Coordinator) runShard(ctx context.Context, sh shard, hooks *SweepHooks) (res json.RawMessage, err error) {
	ctx, span := obs.Start(ctx, "shard")
	span.SetAttr("seed", strconv.FormatUint(sh.seed, 10))
	span.SetAttr("kind", sh.kind)
	if sh.scheme != "" {
		span.SetAttr("scheme", sh.scheme)
	}
	defer func() {
		span.SetError(err)
		span.End()
		if err != nil {
			hooks.emit(EventShardFailed, sh, "", 0, err)
		} else {
			hooks.emit(EventShardDone, sh, "", 0, nil)
		}
	}()

	var lastErr error
	var lastBackend *backendState
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.metrics.retries.Add(1)
			hooks.emit(EventRetry, sh, backendName(lastBackend), attempt, lastErr)
			obs.Logger(ctx).Warn("cluster: retrying shard",
				"seed", sh.seed, "attempt", attempt,
				"failed_backend", backendName(lastBackend), "err", lastErr.Error())
		}
		res, err := c.attemptShard(ctx, sh, lastBackend, attempt, hooks)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil || permanent(err) {
			break
		}
		// Prefer a different backend next time; attemptShard's exclusion
		// handles the single-backend fleet (falls back to the same one).
		if bs, ok := err.(*attemptError); ok {
			lastBackend = bs.backend
		}
	}
	return nil, lastErr
}

// backendName is nil-safe (the first attempt has no prior backend).
func backendName(bs *backendState) string {
	if bs == nil {
		return ""
	}
	return bs.b.Name()
}

// attemptError carries which backend an attempt failed on, so the retry
// loop can steer the re-dispatch elsewhere.
type attemptError struct {
	backend *backendState
	err     error
}

func (e *attemptError) Error() string { return e.err.Error() }
func (e *attemptError) Unwrap() error { return e.err }

// attemptShard runs one dispatch of a shard: a primary on the least-loaded
// backend (avoiding the backend the previous attempt failed on), plus — if
// the primary stalls past HedgeAfter and another backend exists — one
// hedged duplicate. The first success wins; the loser's context is
// canceled, which an HTTPBackend turns into DELETE /v1/jobs/{id}.
func (c *Coordinator) attemptShard(ctx context.Context, sh shard, avoid *backendState, attempt int, hooks *SweepHooks) (json.RawMessage, error) {
	primary := c.pick(avoid)
	if primary == nil {
		primary = c.pick(nil)
	}
	if primary == nil {
		return nil, errors.New("no backend available")
	}

	actx, cancel := context.WithTimeout(ctx, c.opts.ShardTimeout)
	defer cancel()

	type outcome struct {
		res json.RawMessage
		err error
		bs  *backendState
	}
	results := make(chan outcome, 2) // buffered: a late loser must not block
	launch := func(bs *backendState, hedged bool) {
		c.metrics.dispatched.Add(1)
		if hedged {
			hooks.emit(EventHedge, sh, bs.b.Name(), attempt, nil)
		} else {
			hooks.emit(EventDispatch, sh, bs.b.Name(), attempt, nil)
		}
		obs.Logger(ctx).Debug("cluster: dispatching shard",
			"seed", sh.seed, "backend", bs.b.Name(), "attempt", attempt, "hedged", hedged)
		go func() {
			// One span per dispatch: the remote job's execution span (reported
			// back in its job document) becomes this span's child via the
			// propagation headers pcmclient stamps from this context.
			dctx, dspan := obs.Start(actx, "dispatch")
			dspan.SetAttr("backend", bs.b.Name())
			dspan.SetAttr("attempt", strconv.Itoa(attempt))
			if hedged {
				dspan.SetAttr("hedged", "true")
			}
			res, err := bs.b.RunJob(dctx, sh.kind, sh.params)
			dspan.SetError(err)
			dspan.End()
			c.release(bs)
			results <- outcome{res: res, err: err, bs: bs}
		}()
	}
	launch(primary, false)

	var hedgeCh <-chan time.Time
	if c.opts.HedgeAfter > 0 && len(c.backends) > 1 {
		hedgeTimer := time.NewTimer(c.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeCh = hedgeTimer.C
	}

	inflight := 1
	var firstErr error
	for inflight > 0 {
		select {
		case <-hedgeCh:
			hedgeCh = nil
			if second := c.pick(primary); second != nil {
				c.metrics.hedges.Add(1)
				launch(second, true)
				inflight++
			}
		case o := <-results:
			inflight--
			if o.err == nil {
				o.bs.onSuccess()
				if inflight > 0 {
					// The duplicate lost; reclaim it.
					c.metrics.hedgeCancels.Add(1)
					hooks.emit(EventHedgeCancel, sh, o.bs.b.Name(), attempt, nil)
					obs.Logger(ctx).Debug("cluster: hedge won, canceling loser",
						"seed", sh.seed, "winner", o.bs.b.Name())
					cancel()
				}
				return o.res, nil
			}
			c.metrics.shardFailures.Add(1)
			// Don't punish a backend for a cancellation we caused.
			if actx.Err() == nil || !errors.Is(o.err, context.Canceled) {
				if o.bs.onFailure(c.opts.BreakerThreshold, c.opts.BreakerCooldown, time.Now()) {
					c.metrics.breakerOpens.Add(1)
					obs.Logger(ctx).Warn("cluster: circuit opened",
						"backend", o.bs.b.Name(), "err", o.err.Error())
				}
			}
			if firstErr == nil {
				firstErr = &attemptError{backend: o.bs, err: o.err}
			}
		}
	}
	return nil, firstErr
}
