package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"pcmcomp/internal/obs"
	"pcmcomp/internal/pcmclient"
)

// Backend is one execution target for shards. Implementations must be safe
// for concurrent RunJob calls, and must abort promptly when the context is
// canceled — the coordinator relies on that to reclaim hedged duplicates.
type Backend interface {
	// Name identifies the backend in metrics and errors.
	Name() string
	// Weight is the backend's relative capacity for least-loaded selection
	// (a weight-2 backend receives ~2x the shards of a weight-1 one).
	Weight() float64
	// RunJob executes one job of the given kind and returns its raw result
	// payload. Cancellation of ctx must stop the work (for a remote
	// backend, by canceling the submitted job).
	RunJob(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error)
	// Check probes the backend's health (used by the coordinator's health
	// loop to close an open circuit).
	Check(ctx context.Context) error
}

// RunFunc executes one job in-process; it is the loopback backend's engine.
// internal/server exports one (ExecuteLocal) so a peerless pcmd degrades to
// local execution, and tests substitute fakes.
type RunFunc func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error)

// Loopback is an in-process backend: shards run in the coordinator's own
// process through a RunFunc. It is always healthy.
type Loopback struct {
	name   string
	weight float64
	run    RunFunc
}

// NewLoopback builds an in-process backend (weight <= 0 selects 1).
func NewLoopback(name string, weight float64, run RunFunc) *Loopback {
	if weight <= 0 {
		weight = 1
	}
	return &Loopback{name: name, weight: weight, run: run}
}

func (l *Loopback) Name() string    { return l.name }
func (l *Loopback) Weight() float64 { return l.weight }

func (l *Loopback) RunJob(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
	return l.run(ctx, kind, params)
}

func (l *Loopback) Check(context.Context) error { return nil }

// HTTPBackend runs shards on a remote pcmd daemon: submit, wait, and — when
// the shard's context is canceled (hedge lost, sweep canceled) — a
// best-effort DELETE /v1/jobs/{id} so the remote worker is freed instead of
// burning CPU on a result nobody wants.
type HTTPBackend struct {
	// Client is the underlying pcmd client; callers may tune its retry and
	// poll knobs before the first RunJob.
	Client *pcmclient.Client
	name   string
	weight float64
}

// NewHTTPBackend builds a backend for the pcmd daemon at baseURL
// (weight <= 0 selects 1).
func NewHTTPBackend(baseURL string, weight float64) *HTTPBackend {
	if weight <= 0 {
		weight = 1
	}
	return &HTTPBackend{Client: pcmclient.New(baseURL), name: baseURL, weight: weight}
}

func (h *HTTPBackend) Name() string    { return h.name }
func (h *HTTPBackend) Weight() float64 { return h.weight }

func (h *HTTPBackend) RunJob(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
	j, err := h.Client.Submit(ctx, kind, params)
	if err != nil {
		return nil, fmt.Errorf("backend %s: submit: %w", h.name, err)
	}
	id := j.ID
	if !j.Terminal() {
		w, werr := h.Client.Wait(ctx, j.ID)
		if w != nil {
			j = w
		}
		err = werr
	}
	// Graft the backend's execution spans into the caller's trace: the
	// remote job ran under the trace ID we propagated, so its reported
	// spans slot straight into the coordinator's span tree.
	obs.RecordAll(ctx, j.Spans)
	if err != nil {
		if ctx.Err() != nil {
			// The coordinator abandoned this attempt (hedge lost, sweep
			// canceled); release the remote job under a fresh context (ours
			// is already dead). Wait returns a nil job on a canceled poll,
			// so the DELETE targets the ID captured at submission.
			h.cancelJob(id)
		}
		return nil, fmt.Errorf("backend %s: %w", h.name, err)
	}
	if j.State != pcmclient.StateDone {
		return nil, fmt.Errorf("backend %s: %w", h.name, &pcmclient.JobFailed{Job: *j})
	}
	return j.Result, nil
}

// cancelJob best-effort-DELETEs an abandoned job.
func (h *HTTPBackend) cancelJob(id string) {
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _ = h.Client.Cancel(ctx, id)
}

func (h *HTTPBackend) Check(ctx context.Context) error {
	return h.Client.Health(ctx)
}
