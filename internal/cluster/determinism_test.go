package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"pcmcomp/internal/cluster"
	"pcmcomp/internal/server"
)

// localBackends builds n in-process backends over the server's local job
// pipeline — the same engine a peerless pcmd hands its coordinator.
func localBackends(n int) []cluster.Backend {
	out := make([]cluster.Backend, n)
	for i := range out {
		out[i] = cluster.NewLoopback(fmt.Sprintf("local-%d", i), 1,
			func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
				return server.ExecuteLocal(ctx, server.Kind(kind), params)
			})
	}
	return out
}

// TestShardedSweepBitIdentical pins the determinism contract: a sweep
// sharded across N backends marshals to bytes identical to the unsharded
// run (N=1), for every job kind. Scheduling, backend count, and completion
// order must leave no trace in the merged document.
func TestShardedSweepBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		req  cluster.SweepRequest
	}{
		{
			name: "lifetime",
			req: cluster.SweepRequest{
				Kind: cluster.KindLifetime,
				Params: map[string]any{
					"app": "milc", "scale": "quick",
					"systems": []any{"baseline", "comp"}, "max_demand_writes": 20000,
				},
				SeedStart: 1, SeedCount: 3,
			},
		},
		{
			// The scheme matrix multiplies the shard axis: seeds x schemes,
			// scheme-major. The merged document must still be byte-stable
			// across backend counts.
			name: "lifetime-scheme-matrix",
			req: cluster.SweepRequest{
				Kind: cluster.KindLifetime,
				Params: map[string]any{
					"app": "milc", "scale": "quick", "max_demand_writes": 10000,
				},
				SeedStart: 1, SeedCount: 2,
				Schemes: []string{"baseline", "comp", "enc=coset4"},
			},
		},
		{
			name: "failure-probability",
			req: cluster.SweepRequest{
				Kind: cluster.KindFailureProbability,
				Params: map[string]any{
					"scheme": "ecp", "window": 16, "max_errors": 8, "trials": 2000,
				},
				SeedStart: 1, SeedCount: 4,
			},
		},
		{
			name: "compression",
			req: cluster.SweepRequest{
				Kind:      cluster.KindCompression,
				Params:    map[string]any{"apps": []any{"milc"}, "scale": "quick"},
				SeedStart: 7, SeedCount: 2,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			var refCurve []float64
			for _, n := range []int{1, 2, 4} {
				coord, err := cluster.New(localBackends(n), cluster.Options{Concurrency: 2 * n})
				if err != nil {
					t.Fatal(err)
				}
				res, err := coord.Sweep(context.Background(), tc.req, nil)
				if err != nil {
					t.Fatalf("n=%d: sweep: %v", n, err)
				}
				buf, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if n == 1 {
					ref, refCurve = buf, res.MeanCurve
					continue
				}
				if !bytes.Equal(buf, ref) {
					t.Fatalf("n=%d: merged result differs from unsharded run\n n=1: %s\n n=%d: %s", n, ref, n, buf)
				}
				// Belt and braces for the float reduction: the mean curve must
				// be Float64bits-identical, not merely value-close.
				for i := range res.MeanCurve {
					if math.Float64bits(res.MeanCurve[i]) != math.Float64bits(refCurve[i]) {
						t.Fatalf("n=%d: MeanCurve[%d] bits differ: %x vs %x",
							n, i, math.Float64bits(res.MeanCurve[i]), math.Float64bits(refCurve[i]))
					}
				}
			}
		})
	}
}
