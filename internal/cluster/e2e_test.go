package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"pcmcomp/internal/cluster"
	"pcmcomp/internal/server"
)

// TestKillBackendMidSweepRedispatches is the fleet e2e: three real pcmd
// services behind httptest, one killed while it has shards in flight. The
// coordinator must re-dispatch the orphaned shards to the survivors and the
// merged result must still be byte-identical to a local (loopback) run.
func TestKillBackendMidSweepRedispatches(t *testing.T) {
	req := cluster.SweepRequest{
		Kind: cluster.KindFailureProbability,
		// ~50-100ms per shard: long enough to catch a backend mid-shard,
		// short enough to keep the test quick.
		Params:    map[string]any{"scheme": "ecp", "window": 16, "max_errors": 8, "trials": 150000},
		SeedStart: 1, SeedCount: 8,
	}

	// The unsharded reference result.
	refCoord, err := cluster.New(localBackends(1), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := refCoord.Sweep(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := json.Marshal(refRes)
	if err != nil {
		t.Fatal(err)
	}

	// A fleet of three real daemons.
	var tss [3]*httptest.Server
	var backends []cluster.Backend
	for i := range tss {
		s := server.New(server.Config{Workers: 2, QueueDepth: 32, JobTimeout: time.Minute, CacheEntries: -1})
		tss[i] = httptest.NewServer(s)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		}()
		b := cluster.NewHTTPBackend(tss[i].URL, 1)
		// Fail fast on the killed backend so the coordinator's retry, not the
		// client's transport retry, does the recovering.
		b.Client.PollInterval = 2 * time.Millisecond
		b.Client.MaxRetries = 1
		b.Client.BaseBackoff = 2 * time.Millisecond
		b.Client.MaxBackoff = 10 * time.Millisecond
		backends = append(backends, b)
	}
	defer func() {
		for _, ts := range tss {
			ts.Close()
		}
	}()

	coord, err := cluster.New(backends, cluster.Options{
		MaxRetries: 4, Concurrency: 6, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	type sweepOut struct {
		res *cluster.SweepResult
		err error
	}
	done := make(chan sweepOut, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go func() {
		res, err := coord.Sweep(ctx, req, nil)
		done <- sweepOut{res, err}
	}()

	// Kill the first backend seen with a shard in flight.
	victim := -1
	deadline := time.Now().Add(30 * time.Second)
	for victim < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no backend ever had a shard in flight")
		}
		for i, st := range coord.Backends() {
			if st.Inflight > 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			time.Sleep(500 * time.Microsecond)
		}
	}
	tss[victim].CloseClientConnections()
	tss[victim].Close()
	t.Logf("killed backend %d (%s)", victim, backends[victim].Name())

	out := <-done
	if out.err != nil {
		t.Fatalf("sweep after backend kill: %v", out.err)
	}
	got, err := json.Marshal(out.res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("re-dispatched sweep differs from local reference\nlocal: %s\nfleet: %s", ref, got)
	}
	snap := coord.Metrics()
	if snap.Retries == 0 && snap.ShardFailures == 0 {
		t.Error("killed a loaded backend but saw no shard failures or retries")
	}
	t.Logf("metrics after kill: %+v", snap)
}
