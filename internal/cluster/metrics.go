package cluster

import "sync/atomic"

// Metrics counts the coordinator's dispatch decisions. All fields are
// atomics: shard attempts update them concurrently, and scrapers read them
// through Snapshot without stopping the world.
type Metrics struct {
	dispatched    atomic.Uint64 // attempts launched (primaries + hedges + retries)
	retries       atomic.Uint64 // shard re-dispatches after a failed attempt
	hedges        atomic.Uint64 // duplicate dispatches for straggler shards
	hedgeCancels  atomic.Uint64 // losing duplicates canceled after a win
	shardFailures atomic.Uint64 // attempts that returned an error
	breakerOpens  atomic.Uint64 // circuit-breaker open transitions
	probeOK       atomic.Uint64 // health probes that succeeded
	probeFail     atomic.Uint64 // health probes that failed
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	Dispatched    uint64 `json:"dispatched"`
	Retries       uint64 `json:"retries"`
	Hedges        uint64 `json:"hedges"`
	HedgeCancels  uint64 `json:"hedge_cancels"`
	ShardFailures uint64 `json:"shard_failures"`
	BreakerOpens  uint64 `json:"breaker_opens"`
	ProbesOK      uint64 `json:"probes_ok"`
	ProbesFailed  uint64 `json:"probes_failed"`
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Dispatched:    m.dispatched.Load(),
		Retries:       m.retries.Load(),
		Hedges:        m.hedges.Load(),
		HedgeCancels:  m.hedgeCancels.Load(),
		ShardFailures: m.shardFailures.Load(),
		BreakerOpens:  m.breakerOpens.Load(),
		ProbesOK:      m.probeOK.Load(),
		ProbesFailed:  m.probeFail.Load(),
	}
}

// BackendStatus is one backend's health and load as seen by the picker.
type BackendStatus struct {
	Name             string  `json:"name"`
	Weight           float64 `json:"weight"`
	Inflight         int64   `json:"inflight"`
	Healthy          bool    `json:"healthy"`
	ConsecutiveFails int     `json:"consecutive_fails"`
}
