// Package cluster shards sweep requests across a fleet of pcmd backends
// and merges the shard results deterministically.
//
// The paper's headline numbers come from seed-swept experiments: the same
// lifetime or Monte-Carlo configuration repeated over a range of RNG seeds
// and reduced into a table or an averaged curve. A sweep of S seeds is
// embarrassingly parallel — every seed is an independent job — so the
// coordinator splits the seed range into one shard per seed, dispatches
// shards concurrently to registered backends (remote pcmd daemons through
// internal/pcmclient, or an in-process loopback), and reassembles the
// results in seed order.
//
// # Determinism contract
//
// Each shard's computation is a pure function of its parameters (the RNG is
// seed-partitioned, PR 2), so the merged result depends only on the request,
// never on which backend ran a shard, in what order shards finished, or how
// many backends participated. Concretely:
//
//   - shard results are placed into a slice indexed by seed offset, so the
//     merged Shards list is always in ascending seed order;
//   - raw shard payloads are JSON-compacted before merging, so an HTTP
//     backend (whose responses are re-indented by the server encoder) and a
//     loopback backend yield identical bytes;
//   - the Monte-Carlo mean curve is reduced left-to-right over that ordered
//     slice, making the float64 summation order fixed.
//
// A sweep sharded across N backends therefore marshals to bytes identical
// to the same sweep run unsharded (N=1); the tests pin this for N ∈ {1,2,4}.
//
// Robustness (retries, hedging, circuit breaking) lives in Coordinator; it
// only ever changes *where* a shard runs, never *what* it computes.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"

	"pcmcomp/internal/montecarlo"
	"pcmcomp/internal/scheme"
)

// The job kinds a sweep can shard, mirroring the pcmd endpoints.
const (
	KindLifetime           = "lifetime"
	KindFailureProbability = "failure-probability"
	KindCompression        = "compression"
)

// maxSeeds bounds a single sweep's fan-out (seeds x schemes).
const maxSeeds = 4096

// SweepRequest describes one sweep: a base job configuration repeated over
// a contiguous seed range — and, for lifetime sweeps, optionally over a
// scheme matrix. The per-shard job is Params with "seed" (and "schemes",
// when the matrix axis is used) set to the shard's point, submitted to the
// kind's POST /v1/jobs endpoint.
type SweepRequest struct {
	// Kind is the job kind to shard (lifetime, failure-probability, or
	// compression).
	Kind string `json:"kind"`
	// Params is the base parameter object for every shard; any "seed" it
	// carries is overridden per shard.
	Params map[string]any `json:"params,omitempty"`
	// SeedStart is the first seed (default 1; pcmd treats seed 0 as 1, so
	// sweeps start at 1 to keep shard params canonical).
	SeedStart uint64 `json:"seed_start,omitempty"`
	// SeedCount is the number of consecutive seeds (default 1).
	SeedCount int `json:"seed_count,omitempty"`
	// Schemes is the scheme-matrix axis (lifetime sweeps only): one shard
	// per (scheme, seed) pair, scheme-major. Each entry is a scheme spec —
	// a preset name or a key=value composition — canonicalized by
	// Normalize. Empty leaves the seed axis alone.
	Schemes []string `json:"schemes,omitempty"`
}

// ShardCount is the sweep's total fan-out: seeds times scheme-matrix rows.
func (r *SweepRequest) ShardCount() int {
	if len(r.Schemes) == 0 {
		return r.SeedCount
	}
	return r.SeedCount * len(r.Schemes)
}

// Normalize applies defaults and validates; the error text is safe to send
// to API clients verbatim.
func (r *SweepRequest) Normalize() error {
	switch r.Kind {
	case KindLifetime, KindFailureProbability, KindCompression:
	case "":
		return fmt.Errorf("kind is required (lifetime, failure-probability, or compression)")
	default:
		return fmt.Errorf("unknown sweep kind %q (want lifetime, failure-probability, or compression)", r.Kind)
	}
	if r.SeedStart == 0 {
		r.SeedStart = 1
	}
	if r.SeedCount == 0 {
		r.SeedCount = 1
	}
	if r.SeedCount < 1 || r.SeedCount > maxSeeds {
		return fmt.Errorf("seed_count %d out of [1,%d]", r.SeedCount, maxSeeds)
	}
	if r.SeedStart+uint64(r.SeedCount) < r.SeedStart {
		return fmt.Errorf("seed range overflows: start %d count %d", r.SeedStart, r.SeedCount)
	}
	if len(r.Schemes) > 0 {
		if r.Kind != KindLifetime {
			return fmt.Errorf("schemes are only valid for lifetime sweeps (got kind %q)", r.Kind)
		}
		seen := make(map[string]bool, len(r.Schemes))
		for i, s := range r.Schemes {
			sp, err := scheme.Parse(s)
			if err != nil {
				return err
			}
			// Canonical spec strings keep shard params — and therefore the
			// backends' cache keys — identical across spelling variants.
			r.Schemes[i] = sp.String()
			if seen[r.Schemes[i]] {
				return fmt.Errorf("duplicate scheme %q", r.Schemes[i])
			}
			seen[r.Schemes[i]] = true
		}
		if n := r.ShardCount(); n > maxSeeds {
			return fmt.Errorf("schemes x seeds = %d shards, max %d", n, maxSeeds)
		}
	}
	if r.Params == nil {
		r.Params = map[string]any{}
	}
	return nil
}

// shard is one unit of dispatch: the base params with this shard's point
// on the seed (and, for scheme-matrix sweeps, scheme) axes.
type shard struct {
	index  int
	seed   uint64
	scheme string // empty outside scheme-matrix sweeps
	kind   string
	params json.RawMessage
}

// shards expands the request into its dispatch units, scheme-major then
// seed-ascending (shard index = schemeIdx*SeedCount + seedOffset) so the
// merged order is deterministic. Map marshaling sorts keys, so shard params
// are canonical bytes and every backend computes the same cache key for the
// same shard.
func (r *SweepRequest) shards() ([]shard, error) {
	schemes := r.Schemes
	if len(schemes) == 0 {
		schemes = []string{""}
	}
	out := make([]shard, 0, r.ShardCount())
	for _, sc := range schemes {
		for i := 0; i < r.SeedCount; i++ {
			seed := r.SeedStart + uint64(i)
			p := make(map[string]any, len(r.Params)+2)
			for k, v := range r.Params {
				p[k] = v
			}
			p["seed"] = seed
			if sc != "" {
				p["schemes"] = []string{sc}
			}
			buf, err := json.Marshal(p)
			if err != nil {
				return nil, fmt.Errorf("cluster: marshal shard params: %w", err)
			}
			out = append(out, shard{index: len(out), seed: seed, scheme: sc, kind: r.Kind, params: buf})
		}
	}
	return out, nil
}

// ShardResult is one shard's slice of the merged result.
type ShardResult struct {
	Seed uint64 `json:"seed"`
	// Scheme is the shard's scheme spec on scheme-matrix sweeps; empty
	// otherwise.
	Scheme string `json:"scheme,omitempty"`
	// Result is the shard job's raw result payload, compacted. Which
	// backend produced it is deliberately absent — the merged document must
	// not depend on scheduling.
	Result json.RawMessage `json:"result"`
}

// SweepResult is the deterministic merged output of a sweep: the per-seed
// results in ascending seed order, plus the kind-specific reduction. Its
// JSON marshaling is byte-identical for any backend count (see the package
// comment for the contract).
type SweepResult struct {
	Kind      string        `json:"kind"`
	SeedStart uint64        `json:"seed_start"`
	SeedCount int           `json:"seed_count"`
	Schemes   []string      `json:"schemes,omitempty"`
	Shards    []ShardResult `json:"shards"`
	// MeanCurve is the failure-probability reduction: the per-seed curves
	// averaged pointwise, summed in seed order (fixed float64 order).
	MeanCurve []float64 `json:"mean_curve,omitempty"`
	// TolerableAtHalf is the paper's comparison point on the mean curve:
	// the largest error count with failure probability <= 0.5.
	TolerableAtHalf int `json:"tolerable_at_half,omitempty"`
}

// merge assembles the ordered raw shard results (raw[i] belongs to shard
// index i, scheme-major then seed-ascending) into the sweep's merged
// document.
func merge(req *SweepRequest, raw []json.RawMessage) (*SweepResult, error) {
	out := &SweepResult{
		Kind:      req.Kind,
		SeedStart: req.SeedStart,
		SeedCount: req.SeedCount,
		Schemes:   req.Schemes,
		Shards:    make([]ShardResult, len(raw)),
	}
	for i, r := range raw {
		seed := req.SeedStart + uint64(i%req.SeedCount)
		sc := ""
		if len(req.Schemes) > 0 {
			sc = req.Schemes[i/req.SeedCount]
		}
		if len(r) == 0 {
			return nil, fmt.Errorf("cluster: missing result for seed %d", seed)
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, r); err != nil {
			return nil, fmt.Errorf("cluster: shard seed %d returned invalid JSON: %w", seed, err)
		}
		out.Shards[i] = ShardResult{Seed: seed, Scheme: sc, Result: buf.Bytes()}
	}
	if req.Kind == KindFailureProbability {
		if err := reduceCurves(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// reduceCurves computes the pointwise mean of the per-seed curves, in seed
// order so the summation is deterministic.
func reduceCurves(res *SweepResult) error {
	var sum []float64
	for _, sh := range res.Shards {
		var doc struct {
			Curve []float64 `json:"curve"`
		}
		if err := json.Unmarshal(sh.Result, &doc); err != nil {
			return fmt.Errorf("cluster: decode curve for seed %d: %w", sh.Seed, err)
		}
		if sum == nil {
			sum = make([]float64, len(doc.Curve))
		}
		if len(doc.Curve) != len(sum) {
			return fmt.Errorf("cluster: seed %d curve has %d points, want %d",
				sh.Seed, len(doc.Curve), len(sum))
		}
		for i, p := range doc.Curve {
			sum[i] += p
		}
	}
	n := float64(len(res.Shards))
	for i := range sum {
		sum[i] /= n
	}
	res.MeanCurve = sum
	res.TolerableAtHalf = montecarlo.TolerableAt(sum, 0.5)
	return nil
}
