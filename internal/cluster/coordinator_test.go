package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pcmcomp/internal/pcmclient"
)

// echoRun is a RunFunc that returns the shard's seed back as its result, so
// merge order is observable.
func echoRun(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
	var p struct {
		Seed uint64 `json:"seed"`
	}
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, err
	}
	return json.RawMessage(fmt.Sprintf(`{"seed":%d,"kind":%q}`, p.Seed, kind)), nil
}

func TestNormalizeDefaultsAndValidation(t *testing.T) {
	r := SweepRequest{Kind: KindLifetime}
	if err := r.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if r.SeedStart != 1 || r.SeedCount != 1 || r.Params == nil {
		t.Fatalf("defaults not applied: %+v", r)
	}

	for _, bad := range []SweepRequest{
		{},
		{Kind: "bogus"},
		{Kind: KindLifetime, SeedCount: maxSeeds + 1},
		{Kind: KindLifetime, SeedCount: -1},
		{Kind: KindLifetime, SeedStart: ^uint64(0), SeedCount: 2},
	} {
		if err := bad.Normalize(); err == nil {
			t.Errorf("Normalize(%+v): want error", bad)
		}
	}
}

func TestShardsCanonicalParams(t *testing.T) {
	r := SweepRequest{
		Kind:      KindCompression,
		Params:    map[string]any{"scale": "quick", "apps": []any{"milc"}, "seed": float64(99)},
		SeedStart: 5,
		SeedCount: 3,
	}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	shards, err := r.shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("len(shards) = %d, want 3", len(shards))
	}
	// The base "seed":99 is overridden per shard, and map marshaling sorts
	// keys so the bytes are canonical.
	want := `{"apps":["milc"],"scale":"quick","seed":6}`
	if got := string(shards[1].params); got != want {
		t.Fatalf("shard params = %s, want %s", got, want)
	}
	if shards[2].seed != 7 || shards[2].index != 2 {
		t.Fatalf("shard[2] = %+v", shards[2])
	}
}

// TestSchemeMatrixShards pins the scheme-matrix shard layout: specs are
// canonicalized at Normalize, shards enumerate scheme-major (all seeds of
// scheme 0 first), and each shard's params carry exactly its one spec.
func TestSchemeMatrixShards(t *testing.T) {
	r := SweepRequest{
		Kind:      KindLifetime,
		Params:    map[string]any{"app": "milc", "scale": "quick"},
		SeedStart: 3,
		SeedCount: 2,
		Schemes:   []string{"BASELINE", "enc=coset4,comp=bdi"},
	}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	wantSpecs := []string{"baseline", "comp=bdi,ecc=ecp6,enc=coset4,wl=startgap"}
	if len(r.Schemes) != 2 || r.Schemes[0] != wantSpecs[0] || r.Schemes[1] != wantSpecs[1] {
		t.Fatalf("canonicalized schemes = %v, want %v", r.Schemes, wantSpecs)
	}
	if r.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", r.ShardCount())
	}
	shards, err := r.shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("len(shards) = %d, want 4", len(shards))
	}
	for i, sh := range shards {
		wantSeed := uint64(3 + i%2)
		wantScheme := wantSpecs[i/2]
		if sh.seed != wantSeed || sh.scheme != wantScheme || sh.index != i {
			t.Fatalf("shard %d = {seed %d scheme %q index %d}, want {seed %d scheme %q index %d}",
				i, sh.seed, sh.scheme, sh.index, wantSeed, wantScheme, i)
		}
		var p map[string]any
		if err := json.Unmarshal(sh.params, &p); err != nil {
			t.Fatal(err)
		}
		got, _ := p["schemes"].([]any)
		if len(got) != 1 || got[0] != wantScheme {
			t.Fatalf("shard %d params schemes = %v, want [%q]", i, got, wantScheme)
		}
	}

	for _, bad := range []SweepRequest{
		{Kind: KindCompression, Schemes: []string{"baseline"}},
		{Kind: KindLifetime, Schemes: []string{"nonsense=1"}},
		{Kind: KindLifetime, Schemes: []string{"comp", "comp=bdi+fpc,ecc=ecp6,wl=startgap"}},
		{Kind: KindLifetime, SeedCount: maxSeeds / 2, Schemes: []string{"baseline", "comp", "comp+w"}},
	} {
		if err := bad.Normalize(); err == nil {
			t.Errorf("Normalize(%+v): want error", bad)
		}
	}
}

func TestSweepMergesInSeedOrder(t *testing.T) {
	// Delay shards by a decreasing amount so completion order is reversed
	// from seed order; the merged document must still be seed-ascending.
	slow := func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		var p struct {
			Seed uint64 `json:"seed"`
		}
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		time.Sleep(time.Duration(8-p.Seed) * 5 * time.Millisecond)
		return echoRun(ctx, kind, params)
	}
	c, err := New([]Backend{NewLoopback("a", 1, slow), NewLoopback("b", 1, slow)}, Options{Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	var progress atomic.Int64
	res, err := c.Sweep(context.Background(), SweepRequest{Kind: KindCompression, SeedStart: 1, SeedCount: 6},
		func(done, total int) {
			if total != 6 {
				t.Errorf("progress total = %d, want 6", total)
			}
			progress.Store(int64(done))
		})
	if err != nil {
		t.Fatal(err)
	}
	if progress.Load() != 6 {
		t.Errorf("final progress = %d, want 6", progress.Load())
	}
	for i, sh := range res.Shards {
		if sh.Seed != uint64(i+1) {
			t.Fatalf("shards[%d].Seed = %d, want %d", i, sh.Seed, i+1)
		}
		want := fmt.Sprintf(`{"seed":%d,"kind":"compression"}`, i+1)
		if string(sh.Result) != want {
			t.Fatalf("shards[%d].Result = %s, want %s", i, sh.Result, want)
		}
	}
	if got := c.Metrics().Dispatched; got != 6 {
		t.Errorf("dispatched = %d, want 6", got)
	}
}

func TestReduceCurvesMeanAndThreshold(t *testing.T) {
	curve := func(pts ...float64) json.RawMessage {
		buf, _ := json.Marshal(map[string]any{"curve": pts})
		return buf
	}
	res := &SweepResult{
		Kind: KindFailureProbability,
		Shards: []ShardResult{
			{Seed: 1, Result: curve(0.0, 0.4, 1.0)},
			{Seed: 2, Result: curve(0.2, 0.8, 1.0)},
		},
	}
	if err := reduceCurves(res); err != nil {
		t.Fatal(err)
	}
	// Recompute the expected means with the same runtime float64 operations
	// (Go constant arithmetic is exact and would not match).
	want := make([]float64, 3)
	for i, pair := range [][2]float64{{0.0, 0.2}, {0.4, 0.8}, {1.0, 1.0}} {
		s := pair[0] + pair[1]
		want[i] = s / 2
	}
	for i, p := range res.MeanCurve {
		if p != want[i] {
			t.Fatalf("MeanCurve = %v, want %v", res.MeanCurve, want)
		}
	}
	// Largest error count with P <= 0.5 on the mean curve is 1.
	if res.TolerableAtHalf != 1 {
		t.Errorf("TolerableAtHalf = %d, want 1", res.TolerableAtHalf)
	}

	// Mismatched curve lengths are a merge error, not a silent truncation.
	res.Shards[1].Result = curve(0.2)
	if err := reduceCurves(res); err == nil {
		t.Error("want error for mismatched curve lengths")
	}
}

func TestRetryMovesToHealthyBackend(t *testing.T) {
	var aCalls, bCalls atomic.Int64
	flaky := NewLoopback("flaky", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		aCalls.Add(1)
		return nil, errors.New("transient backend blowup")
	})
	good := NewLoopback("good", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		bCalls.Add(1)
		return echoRun(ctx, kind, params)
	})
	c, err := New([]Backend{flaky, good}, Options{MaxRetries: 2, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 2}, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(res.Shards))
	}
	snap := c.Metrics()
	if snap.Retries == 0 {
		t.Errorf("retries = 0, want > 0 (flaky calls %d, good calls %d)", aCalls.Load(), bCalls.Load())
	}
	if snap.ShardFailures == 0 {
		t.Error("shardFailures = 0, want > 0")
	}
	if bCalls.Load() < 2 {
		t.Errorf("good backend ran %d shards, want 2", bCalls.Load())
	}
}

func TestRetriesExhaustedFailsSweep(t *testing.T) {
	bad := NewLoopback("bad", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		return nil, errors.New("kaboom")
	})
	c, err := New([]Backend{bad}, Options{MaxRetries: 1, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want shard failure carrying the cause", err)
	}
	if got := c.Metrics().Retries; got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

func TestPermanentErrorSkipsRetry(t *testing.T) {
	var calls atomic.Int64
	bad := NewLoopback("bad", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		calls.Add(1)
		return nil, fmt.Errorf("wrapped: %w", &pcmclient.APIError{StatusCode: 400, Message: "bad params"})
	})
	c, err := New([]Backend{bad, NewLoopback("other", 1, echoRun)}, Options{MaxRetries: 3, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 1}, nil)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, pcmclient.ErrJobFailed) {
		// A 4xx APIError is permanent but is not a JobFailed; just check
		// the retry counter below.
		_ = err
	}
	if calls.Load() != 1 {
		t.Errorf("backend called %d times, want 1 (permanent errors must not re-dispatch)", calls.Load())
	}
	if got := c.Metrics().Retries; got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}

	// A terminal remote job failure (JobFailed) is permanent too.
	var jfCalls atomic.Int64
	jf := NewLoopback("jf", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		jfCalls.Add(1)
		return nil, fmt.Errorf("backend x: %w", &pcmclient.JobFailed{Job: pcmclient.Job{ID: "j1", State: "failed", Error: "sim diverged"}})
	})
	c2, _ := New([]Backend{jf, NewLoopback("other", 1, echoRun)}, Options{MaxRetries: 3, Concurrency: 1})
	_, err = c2.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 1}, nil)
	if !errors.Is(err, pcmclient.ErrJobFailed) {
		t.Fatalf("err = %v, want ErrJobFailed", err)
	}
	if !strings.Contains(err.Error(), "sim diverged") {
		t.Errorf("err %q does not surface the terminal job error body", err)
	}
	if jfCalls.Load() != 1 {
		t.Errorf("backend called %d times, want 1", jfCalls.Load())
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	flappy := NewLoopback("flappy", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		if failing.Load() {
			return nil, errors.New("down")
		}
		return echoRun(ctx, kind, params)
	})
	good := NewLoopback("good", 1, echoRun)
	c, err := New([]Backend{flappy, good}, Options{
		MaxRetries: 3, Concurrency: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Enough shards to trip the breaker: each failure on flappy re-dispatches
	// to good, and after 2 consecutive failures flappy's circuit opens.
	if _, err := c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 4}, nil); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	snap := c.Metrics()
	if snap.BreakerOpens == 0 {
		t.Error("breakerOpens = 0, want > 0")
	}
	statuses := c.Backends()
	if statuses[0].Name != "flappy" || statuses[0].Healthy {
		t.Errorf("flappy status = %+v, want unhealthy", statuses[0])
	}
	if !statuses[1].Healthy {
		t.Errorf("good status = %+v, want healthy", statuses[1])
	}

	// With the circuit open, new shards go to good only.
	before := c.Metrics().ShardFailures
	if _, err := c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 3}, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().ShardFailures; got != before {
		t.Errorf("shardFailures grew %d -> %d while circuit open", before, got)
	}

	// A successful health probe closes the circuit again (Loopback's Check
	// always succeeds).
	failing.Store(false)
	c.CheckAll(context.Background())
	if st := c.Backends(); !st[0].Healthy {
		t.Errorf("flappy still unhealthy after probe: %+v", st[0])
	}
	if got := c.Metrics().ProbesOK; got == 0 {
		t.Error("probesOK = 0, want > 0")
	}
}

func TestReportProbe(t *testing.T) {
	a := NewLoopback("a", 1, echoRun)
	b := NewLoopback("b", 1, echoRun)
	c, err := New([]Backend{a, b}, Options{BreakerCooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	// A failed out-of-band probe (e.g. a fleetobs scrape) opens the circuit.
	c.ReportProbe("a", errors.New("scrape: connection refused"))
	st := c.Backends()
	if st[0].Healthy || !st[1].Healthy {
		t.Fatalf("after failed probe: %+v", st)
	}
	if m := c.Metrics(); m.ProbesFailed != 1 || m.BreakerOpens != 1 {
		t.Fatalf("metrics after failure: %+v", m)
	}

	// Repeat failures don't double-count the open transition.
	c.ReportProbe("a", errors.New("still down"))
	if m := c.Metrics(); m.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", m.BreakerOpens)
	}

	// A successful probe closes it again.
	c.ReportProbe("a", nil)
	if st := c.Backends(); !st[0].Healthy {
		t.Fatalf("after recovery probe: %+v", st[0])
	}
	if m := c.Metrics(); m.ProbesOK != 1 {
		t.Fatalf("probesOK = %d, want 1", m.ProbesOK)
	}

	// Unknown backends are ignored, not invented.
	c.ReportProbe("nope", errors.New("x"))
	if got := len(c.Backends()); got != 2 {
		t.Fatalf("backends = %d, want 2", got)
	}
}

func TestAllCircuitsOpenStillDispatches(t *testing.T) {
	// A fully-open fleet must limp along (half-open fallback), not deadlock.
	var calls atomic.Int64
	b := NewLoopback("only", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		if calls.Add(1) <= 3 {
			return nil, errors.New("down")
		}
		return echoRun(ctx, kind, params)
	})
	c, err := New([]Backend{b}, Options{MaxRetries: 5, Concurrency: 1, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 1}, nil); err != nil {
		t.Fatalf("sweep: %v", err)
	}
}

func TestHedgeDuplicateCancelsLoser(t *testing.T) {
	primaryCanceled := make(chan struct{})
	slow := NewLoopback("slow", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		<-ctx.Done() // never finishes on its own; only the hedge cancel frees it
		close(primaryCanceled)
		return nil, ctx.Err()
	})
	fast := NewLoopback("fast", 1, echoRun)
	// slow is first in registration order, so with equal load it is the
	// primary pick; the hedge then fires on fast.
	c, err := New([]Backend{slow, fast}, Options{
		MaxRetries: 1, Concurrency: 1, HedgeAfter: 20 * time.Millisecond, ShardTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 1}, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if want := `{"seed":1,"kind":"lifetime"}`; string(res.Shards[0].Result) != want {
		t.Fatalf("result = %s, want %s (the hedge's result must win)", res.Shards[0].Result, want)
	}
	snap := c.Metrics()
	if snap.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", snap.Hedges)
	}
	if snap.HedgeCancels != 1 {
		t.Errorf("hedgeCancels = %d, want 1", snap.HedgeCancels)
	}
	select {
	case <-primaryCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary was never canceled")
	}
	// The self-inflicted cancellation must not punish the slow backend's
	// breaker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Backends()
		if st[0].Inflight == 0 {
			if !st[0].Healthy {
				t.Errorf("slow backend marked unhealthy by its own hedge cancel: %+v", st[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow backend never released its inflight slot")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSweepCanceledMidFlight(t *testing.T) {
	started := make(chan struct{}, 8)
	block := NewLoopback("block", 1, func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c, err := New([]Backend{block}, Options{MaxRetries: 1, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Sweep(ctx, SweepRequest{Kind: KindLifetime, SeedCount: 4}, nil)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled sweep never returned")
	}
}

func TestWeightedPickPrefersHeavierBackend(t *testing.T) {
	var light, heavy atomic.Int64
	count := func(n *atomic.Int64) RunFunc {
		return func(ctx context.Context, kind string, params json.RawMessage) (json.RawMessage, error) {
			n.Add(1)
			time.Sleep(2 * time.Millisecond) // hold the slot so load matters
			return echoRun(ctx, kind, params)
		}
	}
	c, err := New([]Backend{
		NewLoopback("light", 1, count(&light)),
		NewLoopback("heavy", 3, count(&heavy)),
	}, Options{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sweep(context.Background(), SweepRequest{Kind: KindLifetime, SeedCount: 24}, nil); err != nil {
		t.Fatal(err)
	}
	if heavy.Load() <= light.Load() {
		t.Errorf("weight-3 backend ran %d shards vs weight-1's %d; want more", heavy.Load(), light.Load())
	}
}

// TestConcurrentSweepsRace exercises shared coordinator state from parallel
// sweeps; run with -race to validate the locking.
func TestConcurrentSweepsRace(t *testing.T) {
	c, err := New([]Backend{NewLoopback("a", 1, echoRun), NewLoopback("b", 2, echoRun)}, Options{Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			_, err := c.Sweep(context.Background(), SweepRequest{
				Kind: KindCompression, SeedStart: uint64(1 + 10*i), SeedCount: 8,
			}, func(done, total int) { _ = c.Backends() })
			done <- err
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Metrics().Dispatched; got != 32 {
		t.Errorf("dispatched = %d, want 32", got)
	}
}
