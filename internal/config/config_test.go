package config

import (
	"testing"

	"pcmcomp/internal/core"
)

func TestPaperGeometryMatchesTableII(t *testing.T) {
	g := PaperGeometry()
	if g.Banks() != 8 {
		t.Fatalf("banks = %d, want 8 (2 channels x 4 banks)", g.Banks())
	}
	if g.CapacityBytes() != PaperCapacityBytes {
		t.Fatalf("capacity = %d, want 4GB", g.CapacityBytes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCacheConfig(t *testing.T) {
	c := PaperCacheConfig()
	if c.Cores != 16 || c.L1Size != 32<<10 || c.L2Size != 4<<20 {
		t.Fatalf("cache config %+v does not match Table II", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScalePresetsValid(t *testing.T) {
	for _, s := range []Scale{ScaleQuick, ScaleDefault, ScaleLarge} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		sub := s.Substrate(1)
		if err := sub.Geometry.Validate(); err != nil {
			t.Errorf("%s substrate: %v", s.Name, err)
		}
		// The substrate must be usable by a controller.
		if _, err := core.New(core.DefaultConfig(core.CompWF, sub)); err != nil {
			t.Errorf("%s controller: %v", s.Name, err)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	bad := []Scale{
		{EnduranceMean: 0, CoV: 0.1, LinesPerBank: 4, TraceLines: 1, TraceEvents: 1},
		{EnduranceMean: 10, CoV: 1.5, LinesPerBank: 4, TraceLines: 1, TraceEvents: 1},
		{EnduranceMean: 10, CoV: 0.1, LinesPerBank: 1, TraceLines: 1, TraceEvents: 1},
		{EnduranceMean: 10, CoV: 0.1, LinesPerBank: 4, TraceLines: 0, TraceEvents: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad scale %d accepted", i)
		}
	}
}

func TestScaleFactors(t *testing.T) {
	s := ScaleQuick
	if got := s.EnduranceScale(); got != PaperEnduranceMean/300 {
		t.Fatalf("endurance scale = %v", got)
	}
	cs := s.CapacityScale()
	wantSim := float64(17 * 8)
	if got := float64(PaperLines) / wantSim; cs != got {
		t.Fatalf("capacity scale = %v, want %v", cs, got)
	}
	if cs <= 1 {
		t.Fatal("capacity scale should exceed 1 for scaled-down substrates")
	}
}
