// Package config centralizes the paper's Table II system parameters and
// the experiment scaling presets the reproduction runs at. The real system
// (4GB PCM, 10^7-write cells) is intractable to simulate cell-by-cell, so
// experiments run on proportionally scaled substrates and rescale their
// results through lifetime.TimeModel (see internal/lifetime's package
// comment for the invariance argument).
package config

import (
	"fmt"

	"pcmcomp/internal/block"
	"pcmcomp/internal/cachesim"
	"pcmcomp/internal/pcm"
)

// PaperEnduranceMean is Table II's mean cell endurance.
const PaperEnduranceMean = 1e7

// PaperCapacityBytes is Table II's PCM capacity (4GB).
const PaperCapacityBytes = 4 << 30

// PaperLines is the number of 64-byte lines in the paper's memory.
const PaperLines = PaperCapacityBytes / block.Size

// PaperGeometry mirrors Table II's organization: 2 channels, 1 DIMM per
// channel, 1 rank per DIMM, 4 banks per rank.
func PaperGeometry() pcm.Geometry {
	g := pcm.Geometry{
		Channels: 2, DIMMsPerChannel: 1, RanksPerDIMM: 1, BanksPerRank: 4,
	}
	g.LinesPerBank = PaperLines / g.Banks()
	return g
}

// PaperCacheConfig mirrors Table II's hierarchy.
func PaperCacheConfig() cachesim.Config { return cachesim.DefaultConfig() }

// Scale is one experiment-size preset.
type Scale struct {
	// Name identifies the preset in reports.
	Name string
	// EnduranceMean is the scaled mean cell endurance.
	EnduranceMean float64
	// CoV is the endurance coefficient of variation (paper: 0.15;
	// Fig 13 uses 0.25).
	CoV float64
	// LinesPerBank scales capacity (8 banks as in Table II).
	LinesPerBank int
	// TraceLines is the workload generator's address space.
	TraceLines int
	// TraceEvents is the trace length before cyclic replay.
	TraceEvents int
}

// Presets, from fastest to most faithful.
var (
	// ScaleQuick suits unit tests and smoke runs (seconds).
	ScaleQuick = Scale{
		Name: "quick", EnduranceMean: 300, CoV: 0.15,
		LinesPerBank: 17, TraceLines: 128, TraceEvents: 4096,
	}
	// ScaleDefault is the EXPERIMENTS.md reporting scale (minutes).
	ScaleDefault = Scale{
		Name: "default", EnduranceMean: 1500, CoV: 0.15,
		LinesPerBank: 65, TraceLines: 512, TraceEvents: 16384,
	}
	// ScaleLarge trades hours for tighter statistics.
	ScaleLarge = Scale{
		Name: "large", EnduranceMean: 5000, CoV: 0.15,
		LinesPerBank: 257, TraceLines: 2048, TraceEvents: 65536,
	}
)

// ByName returns the preset with the given name ("quick", "default",
// "large"), shared by the CLI flag parsers and the pcmd service validator.
func ByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return ScaleQuick, nil
	case "default":
		return ScaleDefault, nil
	case "large":
		return ScaleLarge, nil
	default:
		return Scale{}, fmt.Errorf("config: unknown scale %q (want quick, default, or large)", name)
	}
}

// Names lists the preset names ByName accepts, fastest first.
func Names() []string { return []string{ScaleQuick.Name, ScaleDefault.Name, ScaleLarge.Name} }

// Validate checks the preset.
func (s Scale) Validate() error {
	if s.EnduranceMean < 1 {
		return fmt.Errorf("config: endurance mean %v must be >= 1", s.EnduranceMean)
	}
	if s.CoV < 0 || s.CoV >= 1 {
		return fmt.Errorf("config: CoV %v out of [0,1)", s.CoV)
	}
	if s.LinesPerBank < 2 {
		return fmt.Errorf("config: lines per bank %d must be >= 2", s.LinesPerBank)
	}
	if s.TraceLines < 1 || s.TraceEvents < 1 {
		return fmt.Errorf("config: trace dimensions must be >= 1")
	}
	return nil
}

// Substrate builds the scaled PCM configuration for this preset.
func (s Scale) Substrate(seed uint64) pcm.Config {
	g := PaperGeometry()
	g.LinesPerBank = s.LinesPerBank
	return pcm.Config{
		Geometry:  g,
		Endurance: pcm.Endurance{Mean: s.EnduranceMean, CoV: s.CoV},
		Seed:      seed,
	}
}

// EnduranceScale returns realEndurance / simulatedEndurance for
// lifetime.TimeModel.
func (s Scale) EnduranceScale() float64 { return PaperEnduranceMean / s.EnduranceMean }

// CapacityScale returns realLines / simulatedLines for lifetime.TimeModel.
func (s Scale) CapacityScale() float64 {
	g := PaperGeometry()
	simLines := float64(s.LinesPerBank * g.Banks())
	return float64(PaperLines) / simLines
}
