package cachesim

import (
	"testing"

	"pcmcomp/internal/block"
	"pcmcomp/internal/rng"
	"pcmcomp/internal/trace"
	"pcmcomp/internal/workload"
)

func tinyConfig() Config {
	return Config{Cores: 2, L1Size: 512, L1Ways: 2, L2Size: 2048, L2Ways: 4}
}

func blockWith(v byte) block.Block {
	var b block.Block
	for i := range b {
		b[i] = v
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Cores: 0, L1Size: 512, L1Ways: 2, L2Size: 2048, L2Ways: 4},
		{Cores: 1, L1Size: 32, L1Ways: 2, L2Size: 2048, L2Ways: 4},
		{Cores: 1, L1Size: 512, L1Ways: 3, L2Size: 2048, L2Ways: 4}, // 8 lines % 3
		{Cores: 1, L1Size: 960, L1Ways: 5, L2Size: 2048, L2Ways: 4}, // 3 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWriteHitsAbsorbedByL1(t *testing.T) {
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Repeated writes to the same line must produce no memory write-backs.
	for i := 0; i < 100; i++ {
		if err := h.Access(Access{Core: 0, Addr: 1, Write: true, Data: blockWith(byte(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(h.Writebacks()); got != 0 {
		t.Fatalf("%d write-backs without eviction pressure", got)
	}
	s := h.Stats()
	if s.L1Hits != 99 || s.L1Misses != 1 {
		t.Fatalf("L1 hits/misses = %d/%d", s.L1Hits, s.L1Misses)
	}
}

func TestEvictionChainEmitsWriteback(t *testing.T) {
	cfg := tinyConfig() // L1: 8 lines (4 sets x 2), L2: 32 lines (8 sets x 4)
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Write many distinct lines mapping across sets; enough to overflow L2.
	n := 200
	for i := 0; i < n; i++ {
		if err := h.Access(Access{Core: 0, Addr: i, Write: true, Data: blockWith(byte(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.Writebacks()) == 0 {
		t.Fatal("no write-backs despite L2 overflow")
	}
	// Every write-back's data must match what was stored to that address.
	for _, wb := range h.Writebacks() {
		want := blockWith(byte(wb.Addr))
		if !block.Equal(&wb.Data, &want) {
			t.Fatalf("write-back for %d carries wrong data", wb.Addr)
		}
	}
}

func TestFlushDrainsAllDirtyLines(t *testing.T) {
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	written := map[int]block.Block{}
	for i := 0; i < 40; i++ {
		d := blockWith(byte(i * 3))
		written[i] = d
		if err := h.Access(Access{Core: i % 2, Addr: i, Write: true, Data: d}); err != nil {
			t.Fatal(err)
		}
	}
	h.Flush()
	// After flush, the union of write-backs must include the latest data
	// for every written line (later write-backs override earlier ones).
	final := map[int]block.Block{}
	for _, wb := range h.Writebacks() {
		final[wb.Addr] = wb.Data
	}
	for addr, want := range written {
		got, ok := final[addr]
		if !ok {
			t.Fatalf("line %d never written back", addr)
		}
		if !block.Equal(&got, &want) {
			t.Fatalf("line %d write-back stale", addr)
		}
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	d0 := blockWith(0xaa)
	if err := h.Access(Access{Core: 0, Addr: 5, Write: true, Data: d0}); err != nil {
		t.Fatal(err)
	}
	// Core 1 reads the line (shared), then writes it (invalidates core 0).
	if err := h.Access(Access{Core: 1, Addr: 5}); err != nil {
		t.Fatal(err)
	}
	d1 := blockWith(0xbb)
	if err := h.Access(Access{Core: 1, Addr: 5, Write: true, Data: d1}); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Invalidations == 0 {
		t.Fatal("write to shared line caused no invalidation")
	}
	h.Flush()
	final := map[int]block.Block{}
	for _, wb := range h.Writebacks() {
		final[wb.Addr] = wb.Data
	}
	got := final[5]
	if !block.Equal(&got, &d1) {
		t.Fatal("flushed data is not the last writer's")
	}
}

func TestReadAfterRemoteWriteSeesData(t *testing.T) {
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := blockWith(0x42)
	if err := h.Access(Access{Core: 0, Addr: 9, Write: true, Data: d}); err != nil {
		t.Fatal(err)
	}
	// Core 1 reads: the dirty peer copy must be visible (no stale zero).
	if err := h.Access(Access{Core: 1, Addr: 9}); err != nil {
		t.Fatal(err)
	}
	// Force core 1's copy out and verify its content via flush.
	h.Flush()
	final := map[int]block.Block{}
	for _, wb := range h.Writebacks() {
		final[wb.Addr] = wb.Data
	}
	got, ok := final[9]
	if !ok {
		t.Fatal("line 9 never written back")
	}
	if !block.Equal(&got, &d) {
		t.Fatal("peer read lost dirty data")
	}
}

func TestAccessValidation(t *testing.T) {
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Access(Access{Core: 7, Addr: 0}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := h.Access(Access{Core: 0, Addr: -1}); err == nil {
		t.Error("negative address accepted")
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct-check: with a 2-way set, touching A,B,A then C must evict B.
	cfg := Config{Cores: 1, L1Size: 128, L1Ways: 2, L2Size: 2048, L2Ways: 4} // 1 set
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := 0, 1, 2
	for _, addr := range []int{a, b, a, c} {
		if err := h.Access(Access{Core: 0, Addr: addr}); err != nil {
			t.Fatal(err)
		}
	}
	// A and C resident, B evicted: re-reading A and C hits, B misses.
	before := h.Stats().L1Hits
	_ = h.Access(Access{Core: 0, Addr: a})
	_ = h.Access(Access{Core: 0, Addr: c})
	if h.Stats().L1Hits != before+2 {
		t.Fatal("LRU kept the wrong lines")
	}
	beforeMiss := h.Stats().L1Misses
	_ = h.Access(Access{Core: 0, Addr: b})
	if h.Stats().L1Misses != beforeMiss+1 {
		t.Fatal("B should have been evicted")
	}
}

func TestWritebackFilteringReducesTraffic(t *testing.T) {
	// The hierarchy must absorb re-writes: N stores to a small hot set
	// produce far fewer than N write-backs (cache filtering, Table II's
	// "capacity large enough to filter traffic").
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	const stores = 5000
	for i := 0; i < stores; i++ {
		addr := r.Intn(16) // hot working set fits in L2
		if err := h.Access(Access{Core: addr % 2, Addr: addr, Write: true, Data: blockWith(byte(i))}); err != nil {
			t.Fatal(err)
		}
	}
	h.Flush()
	if got := len(h.Writebacks()); got > stores/4 {
		t.Fatalf("%d write-backs from %d stores: no filtering", got, stores)
	}
}

func TestDriverWithWorkloadSource(t *testing.T) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 4096, 11)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(h, gen, 2, 5)
	wbs, err := d.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(wbs) == 0 {
		t.Fatal("no write-backs captured")
	}
	st := trace.Summarize(wbs)
	if st.DistinctLines < 100 {
		t.Fatalf("trace footprint too small: %d lines", st.DistinctLines)
	}
	if st.MaxAddr >= 4096 {
		t.Fatalf("address %d outside generator space", st.MaxAddr)
	}
	s := h.Stats()
	if s.Accesses == 0 || s.L1Hits == 0 || s.L2Misses == 0 {
		t.Fatalf("implausible stats: %+v", s)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := r.Intn(1 << 16)
		_ = h.Access(Access{Core: addr & 15, Addr: addr, Write: i&3 == 0, Data: blockWith(byte(i))})
	}
}
