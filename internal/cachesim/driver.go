package cachesim

import (
	"pcmcomp/internal/rng"
	"pcmcomp/internal/trace"
)

// Source produces CPU-level store intents (a line address and its new
// content); workload.Generator satisfies it.
type Source interface {
	Next() trace.Event
}

// Driver turns a store-intent source into a multicore CPU access stream:
// each intent becomes a store by the line's home core, preceded by a read
// of the same line (load-modify-store) and mixed with reads of recently
// touched lines to model reuse. The hierarchy filters this stream into the
// LLC write-back trace.
type Driver struct {
	h             *Hierarchy
	src           Source
	r             *rng.Rand
	readsPerWrite int
	recent        []int
	recentPos     int
}

// NewDriver builds a driver issuing readsPerWrite extra loads per store.
func NewDriver(h *Hierarchy, src Source, readsPerWrite int, seed uint64) *Driver {
	return &Driver{
		h:             h,
		src:           src,
		r:             rng.New(seed),
		readsPerWrite: readsPerWrite,
		recent:        make([]int, 0, 256),
	}
}

// Step performs one store intent and its surrounding reads.
func (d *Driver) Step() error {
	ev := d.src.Next()
	core := ev.Addr % d.h.cfg.Cores

	// Load-modify-store: read the line first.
	if err := d.h.Access(Access{Core: core, Addr: ev.Addr}); err != nil {
		return err
	}
	if err := d.h.Access(Access{Core: core, Addr: ev.Addr, Write: true, Data: ev.Data}); err != nil {
		return err
	}
	d.remember(ev.Addr)

	// Reuse reads of recent lines, from arbitrary cores (shared data).
	for i := 0; i < d.readsPerWrite && len(d.recent) > 0; i++ {
		addr := d.recent[d.r.Intn(len(d.recent))]
		rc := d.r.Intn(d.h.cfg.Cores)
		if err := d.h.Access(Access{Core: rc, Addr: addr}); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) remember(addr int) {
	if len(d.recent) < cap(d.recent) {
		d.recent = append(d.recent, addr)
		return
	}
	d.recent[d.recentPos] = addr
	d.recentPos = (d.recentPos + 1) % len(d.recent)
}

// Run performs n store intents and flushes the hierarchy, returning the
// captured LLC write-back trace.
func (d *Driver) Run(n int) ([]trace.Event, error) {
	for i := 0; i < n; i++ {
		if err := d.Step(); err != nil {
			return nil, err
		}
	}
	d.h.Flush()
	return d.h.Writebacks(), nil
}
