// Package cachesim models the on-chip memory hierarchy of the paper's
// evaluated CMP (Table II): 16 cores with private write-back L1 data caches
// (32KB, 2-way) above a shared L2 (4MB, 8-way), with invalidation-based
// coherence between the L1s. Its job in this repository is the job gem5's
// Ruby model performed in the paper: filter a CPU-level access stream down
// to the stream of L2 (LLC) write-backs that reaches the PCM main memory,
// which the lifetime simulator then replays.
//
// The model is a functional (data-carrying) cache simulator: lines carry
// their 64-byte contents so that evictions emit real write-back data, and
// LRU replacement determines which dirty lines reach memory.
package cachesim

import (
	"fmt"

	"pcmcomp/internal/block"
	"pcmcomp/internal/trace"
)

// Config sizes the hierarchy. All sizes are in bytes; LineSize is fixed at
// 64 to match the memory system.
type Config struct {
	Cores  int
	L1Size int
	L1Ways int
	L2Size int
	L2Ways int
}

// DefaultConfig mirrors Table II: 16 cores, 32KB/2-way private L1D,
// 4MB/8-way shared L2.
func DefaultConfig() Config {
	return Config{Cores: 16, L1Size: 32 << 10, L1Ways: 2, L2Size: 4 << 20, L2Ways: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("cachesim: need >= 1 core, got %d", c.Cores)
	}
	for _, p := range []struct {
		name       string
		size, ways int
	}{{"L1", c.L1Size, c.L1Ways}, {"L2", c.L2Size, c.L2Ways}} {
		if p.size < block.Size || p.ways < 1 {
			return fmt.Errorf("cachesim: invalid %s geometry (size %d, ways %d)", p.name, p.size, p.ways)
		}
		lines := p.size / block.Size
		if lines%p.ways != 0 {
			return fmt.Errorf("cachesim: %s lines (%d) not divisible by ways (%d)", p.name, lines, p.ways)
		}
		sets := lines / p.ways
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cachesim: %s set count %d is not a power of two", p.name, sets)
		}
	}
	return nil
}

// Access is one CPU memory operation at line granularity.
type Access struct {
	// Core is the issuing core id.
	Core int
	// Addr is the line address.
	Addr int
	// Write marks a store; Data is the full new line content for stores.
	Write bool
	Data  block.Block
}

// Stats counts hierarchy events.
type Stats struct {
	Accesses      uint64
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64
	L2Misses      uint64
	Invalidations uint64
	L2Writebacks  uint64 // dirty L2 evictions -> main memory
}

// line is one cache line's state.
type line struct {
	valid bool
	dirty bool
	addr  int
	lru   uint64
	data  block.Block
}

// cache is a set-associative, LRU, write-back cache.
type cache struct {
	sets  int
	ways  int
	lines []line // sets*ways, row-major by set
	tick  uint64
}

func newCache(sizeBytes, ways int) *cache {
	linesTotal := sizeBytes / block.Size
	return &cache{
		sets:  linesTotal / ways,
		ways:  ways,
		lines: make([]line, linesTotal),
	}
}

func (c *cache) set(addr int) []line {
	s := addr & (c.sets - 1)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// lookup returns the way holding addr, or nil.
func (c *cache) lookup(addr int) *line {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			c.tick++
			set[i].lru = c.tick
			return &set[i]
		}
	}
	return nil
}

// victim returns the way to fill for addr (invalid first, else LRU).
func (c *cache) victim(addr int) *line {
	set := c.set(addr)
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

// invalidate drops addr if present, returning its state beforehand.
func (c *cache) invalidate(addr int) (line, bool) {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			old := set[i]
			set[i] = line{}
			return old, true
		}
	}
	return line{}, false
}

// Hierarchy is the full multicore cache system.
type Hierarchy struct {
	cfg Config
	l1  []*cache
	l2  *cache
	// mem backs lines evicted from L2 so that refills carry real data.
	mem   map[int]block.Block
	wb    []trace.Event
	stats Stats
}

// New builds a hierarchy. It returns an error for invalid configuration.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg: cfg,
		l1:  make([]*cache, cfg.Cores),
		l2:  newCache(cfg.L2Size, cfg.L2Ways),
		mem: make(map[int]block.Block),
	}
	for i := range h.l1 {
		h.l1[i] = newCache(cfg.L1Size, cfg.L1Ways)
	}
	return h, nil
}

// Access performs one CPU memory operation, updating the hierarchy and
// capturing any main-memory write-back it causes.
func (h *Hierarchy) Access(a Access) error {
	if a.Core < 0 || a.Core >= h.cfg.Cores {
		return fmt.Errorf("cachesim: core %d out of range [0,%d)", a.Core, h.cfg.Cores)
	}
	if a.Addr < 0 {
		return fmt.Errorf("cachesim: negative address %d", a.Addr)
	}
	h.stats.Accesses++
	l1 := h.l1[a.Core]

	if ln := l1.lookup(a.Addr); ln != nil {
		h.stats.L1Hits++
		if a.Write {
			h.coherenceOnWrite(a.Core, a.Addr)
			ln.data = a.Data
			ln.dirty = true
		}
		return nil
	}
	h.stats.L1Misses++

	// Fetch the line (from L2, or memory below it) into this L1.
	data := h.fetchIntoL2(a.Addr)
	if a.Write {
		h.coherenceOnWrite(a.Core, a.Addr)
		data = a.Data
	} else {
		// A read may still hit a dirty copy in a peer L1; adopt its data.
		if peer, ok := h.peekPeerDirty(a.Core, a.Addr); ok {
			data = peer
		}
	}
	h.fillL1(a.Core, a.Addr, data, a.Write)
	return nil
}

// coherenceOnWrite invalidates all other cores' copies, folding any dirty
// peer data into L2 first (MESI-style ownership transfer, simplified).
func (h *Hierarchy) coherenceOnWrite(core, addr int) {
	for i, l1 := range h.l1 {
		if i == core {
			continue
		}
		if old, ok := l1.invalidate(addr); ok {
			h.stats.Invalidations++
			if old.dirty {
				h.storeIntoL2(addr, old.data)
			}
		}
	}
}

// peekPeerDirty returns a dirty peer copy's data without invalidating it
// (shared read).
func (h *Hierarchy) peekPeerDirty(core, addr int) (block.Block, bool) {
	for i, l1 := range h.l1 {
		if i == core {
			continue
		}
		set := l1.set(addr)
		for j := range set {
			if set[j].valid && set[j].addr == addr && set[j].dirty {
				return set[j].data, true
			}
		}
	}
	return block.Block{}, false
}

// fillL1 installs a line into a core's L1, evicting as needed.
func (h *Hierarchy) fillL1(core, addr int, data block.Block, dirty bool) {
	l1 := h.l1[core]
	v := l1.victim(addr)
	if v.valid && v.dirty {
		h.storeIntoL2(v.addr, v.data)
	}
	l1.tick++
	*v = line{valid: true, dirty: dirty, addr: addr, lru: l1.tick, data: data}
}

// fetchIntoL2 ensures addr is resident in L2 and returns its data.
func (h *Hierarchy) fetchIntoL2(addr int) block.Block {
	if ln := h.l2.lookup(addr); ln != nil {
		h.stats.L2Hits++
		return ln.data
	}
	h.stats.L2Misses++
	data := h.mem[addr] // zero block for untouched memory
	h.installL2(addr, data, false)
	return data
}

// storeIntoL2 folds a dirty line into L2 (allocating it if necessary).
func (h *Hierarchy) storeIntoL2(addr int, data block.Block) {
	if ln := h.l2.lookup(addr); ln != nil {
		ln.data = data
		ln.dirty = true
		return
	}
	h.installL2(addr, data, true)
}

func (h *Hierarchy) installL2(addr int, data block.Block, dirty bool) {
	v := h.l2.victim(addr)
	if v.valid {
		// Back-invalidate L1 copies of the evicted line (inclusive L2).
		evicted := v.data
		evictedDirty := v.dirty
		for _, l1 := range h.l1 {
			if old, ok := l1.invalidate(v.addr); ok {
				h.stats.Invalidations++
				if old.dirty {
					evicted = old.data
					evictedDirty = true
				}
			}
		}
		if evictedDirty {
			h.emitWriteback(v.addr, evicted)
		}
		h.mem[v.addr] = evicted
	}
	h.l2.tick++
	*v = line{valid: true, dirty: dirty, addr: addr, lru: h.l2.tick, data: data}
}

func (h *Hierarchy) emitWriteback(addr int, data block.Block) {
	h.stats.L2Writebacks++
	h.wb = append(h.wb, trace.Event{Addr: addr, Data: data})
}

// Flush writes back every dirty line (L1s first, then L2), emitting the
// corresponding main-memory write-backs; used to finalize a trace.
func (h *Hierarchy) Flush() {
	for _, l1 := range h.l1 {
		for i := range l1.lines {
			ln := &l1.lines[i]
			if ln.valid && ln.dirty {
				h.storeIntoL2(ln.addr, ln.data)
			}
			*ln = line{}
		}
	}
	for i := range h.l2.lines {
		ln := &h.l2.lines[i]
		if ln.valid && ln.dirty {
			h.emitWriteback(ln.addr, ln.data)
			h.mem[ln.addr] = ln.data
		}
		*ln = line{}
	}
}

// Writebacks returns the captured main-memory write-back trace.
func (h *Hierarchy) Writebacks() []trace.Event { return h.wb }

// Stats returns the hierarchy's counters.
func (h *Hierarchy) Stats() Stats { return h.stats }
