// Package trace defines the LLC write-back trace that connects the
// front-end (the cache simulator or the direct workload generators) to the
// lifetime simulator, mirroring the paper's methodology of collecting
// main-memory access traces in gem5 and replaying them in a lightweight
// PCM lifetime simulator (§IV).
//
// A trace is a sequence of events, each a 64-byte write-back to a logical
// line address. The binary on-disk format is:
//
//	magic "PCMT" | uvarint version | uvarint event count |
//	events: uvarint address | 64 data bytes
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pcmcomp/internal/block"
)

// Event is one LLC write-back.
type Event struct {
	// Addr is the logical line address.
	Addr int
	// Data is the 64-byte write-back payload.
	Data block.Block
}

const (
	magic   = "PCMT"
	version = 1
)

// ErrBadMagic reports a stream that is not a PCM trace.
var ErrBadMagic = errors.New("trace: bad magic (not a PCM write-back trace)")

// Write encodes events to w in the binary trace format.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(version); err != nil {
		return fmt.Errorf("trace: write version: %w", err)
	}
	if err := writeUvarint(uint64(len(events))); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	for i := range events {
		if events[i].Addr < 0 {
			return fmt.Errorf("trace: event %d has negative address %d", i, events[i].Addr)
		}
		if err := writeUvarint(uint64(events[i].Addr)); err != nil {
			return fmt.Errorf("trace: write event %d address: %w", i, err)
		}
		if _, err := bw.Write(events[i].Data[:]); err != nil {
			return fmt.Errorf("trace: write event %d data: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Read decodes a full trace from r.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var m [len(magic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, ErrBadMagic
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	const maxEvents = 1 << 30 // sanity bound against corrupt headers
	if count > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	events := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: read event %d address: %w", i, err)
		}
		var e Event
		e.Addr = int(addr)
		if _, err := io.ReadFull(br, e.Data[:]); err != nil {
			return nil, fmt.Errorf("trace: read event %d data: %w", i, err)
		}
		events = append(events, e)
	}
	return events, nil
}

// Stats summarizes a trace.
type Stats struct {
	Events        int
	DistinctLines int
	MaxAddr       int
}

// Summarize scans a trace and reports its footprint.
func Summarize(events []Event) Stats {
	seen := make(map[int]struct{}, len(events)/4+1)
	s := Stats{Events: len(events)}
	for i := range events {
		if events[i].Addr > s.MaxAddr {
			s.MaxAddr = events[i].Addr
		}
		seen[events[i].Addr] = struct{}{}
	}
	s.DistinctLines = len(seen)
	return s
}
