package trace

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"pcmcomp/internal/block"
)

// NDJSON codec: the line-oriented interchange format for traces. Each line
// is one event,
//
//	{"addr":123,"data":"<base64 of the 64-byte payload>"}
//
// newline-delimited, so traces can be produced by anything that can emit
// JSON (a gem5 hook, a one-off script) and streamed without holding the
// whole trace. CRLF line endings are accepted; blank lines are skipped.

// Typed decode errors. Malformed input must never panic: uploads are
// untrusted bytes from the front door.
var (
	// ErrEmptyTrace reports an input with zero events (empty file or only
	// blank lines).
	ErrEmptyTrace = errors.New("trace: empty trace (no events)")
	// ErrTruncated reports an input that ends mid-record: a final line with
	// no terminating newline that does not parse as a complete event.
	ErrTruncated = errors.New("trace: truncated trace (incomplete final record)")
	// ErrRecordTooLarge reports a single NDJSON line longer than
	// MaxNDJSONRecord bytes — a well-formed event line is ~110 bytes, so an
	// oversized line means the input is not an event-per-line trace.
	ErrRecordTooLarge = errors.New("trace: NDJSON record too large")
)

// MaxNDJSONRecord bounds one NDJSON line. A well-formed record is about
// 110 bytes (base64 of 64 payload bytes plus framing); the bound leaves
// room for whitespace and extra fields without letting a single line
// buffer unbounded input.
const MaxNDJSONRecord = 4096

// ndjsonEvent is the wire form of one event. Addr is a pointer so a
// missing field is distinguishable from address zero.
type ndjsonEvent struct {
	Addr *int   `json:"addr"`
	Data string `json:"data"`
}

// WriteNDJSON encodes events to w, one JSON object per line.
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for i := range events {
		if events[i].Addr < 0 {
			return fmt.Errorf("trace: event %d has negative address %d", i, events[i].Addr)
		}
		rec := ndjsonEvent{Addr: &events[i].Addr, Data: base64.StdEncoding.EncodeToString(events[i].Data[:])}
		buf, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadNDJSON decodes an NDJSON trace from r. It returns ErrEmptyTrace,
// ErrTruncated, or ErrRecordTooLarge (wrapped with position detail) for
// the corresponding malformed inputs, and never panics.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var events []Event
	lineNo := 0
	for {
		lineNo++
		line, err := readBoundedLine(br)
		if err == errLineTooLong {
			return nil, fmt.Errorf("%w: line %d exceeds %d bytes", ErrRecordTooLarge, lineNo, MaxNDJSONRecord)
		}
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, fmt.Errorf("trace: read line %d: %w", lineNo, err)
		}
		terminated := strings.HasSuffix(line, "\n")
		line = strings.TrimRight(line, "\r\n")
		line = strings.TrimSpace(line)
		if line != "" {
			ev, perr := parseNDJSONEvent(line)
			if perr != nil {
				if atEOF && !terminated {
					// The stream ends mid-record: an upload cut off before the
					// final newline, not a malformed line.
					return nil, fmt.Errorf("%w: line %d: %v", ErrTruncated, lineNo, perr)
				}
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, perr)
			}
			events = append(events, ev)
		}
		if atEOF {
			break
		}
	}
	if len(events) == 0 {
		return nil, ErrEmptyTrace
	}
	return events, nil
}

// errLineTooLong is readBoundedLine's internal overflow signal.
var errLineTooLong = errors.New("line too long")

// readBoundedLine reads one newline-terminated line of at most
// MaxNDJSONRecord bytes (including the newline). At end of input it
// returns the final unterminated chunk, if any, with io.EOF.
func readBoundedLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		chunk, err := br.ReadString('\n')
		sb.WriteString(chunk)
		if sb.Len() > MaxNDJSONRecord {
			return "", errLineTooLong
		}
		if err != nil {
			return sb.String(), err
		}
		if strings.HasSuffix(chunk, "\n") {
			return sb.String(), nil
		}
	}
}

// parseNDJSONEvent decodes one trimmed, non-empty NDJSON line.
func parseNDJSONEvent(line string) (Event, error) {
	var rec ndjsonEvent
	dec := json.NewDecoder(strings.NewReader(line))
	if err := dec.Decode(&rec); err != nil {
		return Event{}, fmt.Errorf("invalid JSON: %v", err)
	}
	if rec.Addr == nil {
		return Event{}, fmt.Errorf("missing \"addr\" field")
	}
	if *rec.Addr < 0 {
		return Event{}, fmt.Errorf("negative address %d", *rec.Addr)
	}
	data, err := base64.StdEncoding.DecodeString(rec.Data)
	if err != nil {
		return Event{}, fmt.Errorf("invalid base64 data: %v", err)
	}
	if len(data) != block.Size {
		return Event{}, fmt.Errorf("data is %d bytes, want %d", len(data), block.Size)
	}
	ev := Event{Addr: *rec.Addr}
	copy(ev.Data[:], data)
	return ev, nil
}
