package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// Decode reads a complete trace from r in any supported encoding, sniffed
// from the leading bytes:
//
//   - "PCMT": the sized binary format (Write/Read)
//   - "PCMS": the streamed binary format (StreamWriter), read to the end
//     marker
//   - gzip magic: decompressed, then sniffed again (one level — gzip of
//     gzip is rejected as bad magic by the inner pass)
//   - anything starting with '{': NDJSON, one event per line
//
// It is the single ingestion point for uploaded traces, so every producer
// — cmd/tracegen binaries, gzip-compressed spools, script-generated NDJSON
// — lands in the same []Event. Unrecognized leading bytes return
// ErrBadMagic; an input with no events returns ErrEmptyTrace.
func Decode(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: sniff format: %w", err)
	}
	if len(head) == 0 {
		return nil, ErrEmptyTrace
	}
	switch {
	case len(head) >= 2 && head[0] == 0x1f && head[1] == 0x8b:
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: open gzip: %w", err)
		}
		defer gz.Close()
		return decodeUncompressed(bufio.NewReaderSize(gz, 64<<10))
	default:
		return decodeUncompressed(br)
	}
}

// decodeUncompressed dispatches on the magic of an uncompressed stream.
func decodeUncompressed(br *bufio.Reader) ([]Event, error) {
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: sniff format: %w", err)
	}
	if len(head) == 0 {
		return nil, ErrEmptyTrace
	}
	switch {
	case string(head) == magic:
		events, err := Read(br)
		if err != nil {
			return nil, err
		}
		if len(events) == 0 {
			return nil, ErrEmptyTrace
		}
		return events, nil
	case string(head) == streamMagic:
		return readStreamAll(br)
	case head[0] == '{':
		return ReadNDJSON(br)
	default:
		return nil, ErrBadMagic
	}
}

// readStreamAll drains a PCMS stream (already positioned at its magic)
// into a slice.
func readStreamAll(br *bufio.Reader) ([]Event, error) {
	sr, err := NewStreamReader(br, false)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	var events []Event
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return nil, ErrEmptyTrace
	}
	return events, nil
}
