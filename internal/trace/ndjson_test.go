package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
	"testing"

	"pcmcomp/internal/block"
)

func testEvents(n int) []Event {
	events := make([]Event, n)
	for i := range events {
		events[i].Addr = (i * 7) % 100
		for j := range events[i].Data {
			events[i].Data[j] = byte(i + j)
		}
	}
	return events
}

func TestNDJSONRoundTrip(t *testing.T) {
	want := testEvents(25)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, want); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatalf("ReadNDJSON: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// ndjsonLine renders one well-formed record for hand-built inputs.
func ndjsonLine(addr int) string {
	var b block.Block
	for i := range b {
		b[i] = byte(addr + i)
	}
	return fmt.Sprintf(`{"addr":%d,"data":"%s"}`, addr, base64.StdEncoding.EncodeToString(b[:]))
}

func TestNDJSONCRLFLineEndings(t *testing.T) {
	// Windows-produced traces terminate lines with \r\n; decode must strip
	// the carriage returns and yield the same events as the \n form.
	lf := ndjsonLine(1) + "\n" + ndjsonLine(2) + "\n"
	crlf := ndjsonLine(1) + "\r\n" + ndjsonLine(2) + "\r\n"
	want, err := ReadNDJSON(strings.NewReader(lf))
	if err != nil {
		t.Fatalf("ReadNDJSON(LF): %v", err)
	}
	got, err := ReadNDJSON(strings.NewReader(crlf))
	if err != nil {
		t.Fatalf("ReadNDJSON(CRLF): %v", err)
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("CRLF decode differs from LF decode")
	}
}

func TestNDJSONEmptyTrace(t *testing.T) {
	for _, input := range []string{"", "\n\n", "\r\n", "   \n"} {
		_, err := ReadNDJSON(strings.NewReader(input))
		if !errors.Is(err, ErrEmptyTrace) {
			t.Fatalf("ReadNDJSON(%q) = %v, want ErrEmptyTrace", input, err)
		}
	}
}

func TestNDJSONTruncatedTail(t *testing.T) {
	// A complete line followed by a record cut off mid-JSON with no
	// trailing newline: the classic interrupted-upload shape.
	full := ndjsonLine(1) + "\n"
	input := full + `{"addr":2,"data":"AAAA`
	_, err := ReadNDJSON(strings.NewReader(input))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadNDJSON(truncated) = %v, want ErrTruncated", err)
	}
	// The same malformed record terminated by a newline is a malformed
	// line, not a truncation.
	_, err = ReadNDJSON(strings.NewReader(full + `{"addr":2,"data":"AAAA` + "\n"))
	if err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadNDJSON(malformed mid-line) = %v, want non-truncation error", err)
	}
	// A final line that is complete JSON but missing its newline is fine.
	got, err := ReadNDJSON(strings.NewReader(full + ndjsonLine(2)))
	if err != nil || len(got) != 2 {
		t.Fatalf("ReadNDJSON(no final newline) = %d events, %v; want 2, nil", len(got), err)
	}
}

func TestNDJSONOversizedRecord(t *testing.T) {
	huge := `{"addr":1,"data":"` + strings.Repeat("A", MaxNDJSONRecord) + `"}` + "\n"
	_, err := ReadNDJSON(strings.NewReader(huge))
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("ReadNDJSON(oversized) = %v, want ErrRecordTooLarge", err)
	}
}

func TestNDJSONMalformedRecords(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"not json", "hello world"},
		{"missing addr", `{"data":"` + base64.StdEncoding.EncodeToString(make([]byte, block.Size)) + `"}`},
		{"negative addr", `{"addr":-1,"data":"` + base64.StdEncoding.EncodeToString(make([]byte, block.Size)) + `"}`},
		{"bad base64", `{"addr":1,"data":"!!!"}`},
		{"short data", `{"addr":1,"data":"` + base64.StdEncoding.EncodeToString(make([]byte, 8)) + `"}`},
	}
	for _, tc := range cases {
		_, err := ReadNDJSON(strings.NewReader(tc.line + "\n"))
		if err == nil {
			t.Fatalf("%s: decode succeeded, want error", tc.name)
		}
		if errors.Is(err, ErrTruncated) || errors.Is(err, ErrEmptyTrace) {
			t.Fatalf("%s: got %v, want a plain malformed-record error", tc.name, err)
		}
	}
}

func TestDecodeSniffsAllFormats(t *testing.T) {
	want := testEvents(10)

	var pcmt bytes.Buffer
	if err := Write(&pcmt, want); err != nil {
		t.Fatal(err)
	}
	var pcms bytes.Buffer
	sw, err := NewStreamWriter(&pcms, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range want {
		if err := sw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var pcmsGz bytes.Buffer
	sw, err = NewStreamWriter(&pcmsGz, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range want {
		if err := sw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var ndjson bytes.Buffer
	if err := WriteNDJSON(&ndjson, want); err != nil {
		t.Fatal(err)
	}
	var pcmtGz bytes.Buffer
	gz := gzip.NewWriter(&pcmtGz)
	if _, err := gz.Write(pcmt.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}

	for name, raw := range map[string][]byte{
		"pcmt": pcmt.Bytes(), "pcms": pcms.Bytes(), "pcms.gz": pcmsGz.Bytes(),
		"ndjson": ndjson.Bytes(), "pcmt.gz": pcmtGz.Bytes(),
	} {
		got, err := Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("Decode(%s): %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("Decode(%s): %d events, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Decode(%s): event %d mismatch", name, i)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	_, err := Decode(strings.NewReader("XYZW not a trace at all"))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Decode(garbage) = %v, want ErrBadMagic", err)
	}
	_, err = Decode(strings.NewReader(""))
	if !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("Decode(empty) = %v, want ErrEmptyTrace", err)
	}
}
