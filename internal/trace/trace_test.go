package trace

import (
	"bytes"
	"strings"
	"testing"

	"pcmcomp/internal/block"
	"pcmcomp/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	r := rng.New(1)
	events := make([]Event, 500)
	for i := range events {
		events[i].Addr = r.Intn(10000)
		for w := 0; w < 8; w++ {
			events[i].Data.SetWord(w, r.Uint64())
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i].Addr != events[i].Addr || !block.Equal(&got[i].Data, &events[i].Data) {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE....")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	events := []Event{{Addr: 1}, {Addr: 2}}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 5, 6, 10, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestNegativeAddressRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Event{{Addr: -1}}); err == nil {
		t.Fatal("negative address accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{{Addr: 5}, {Addr: 5}, {Addr: 9}, {Addr: 0}}
	s := Summarize(events)
	if s.Events != 4 || s.DistinctLines != 3 || s.MaxAddr != 9 {
		t.Fatalf("stats = %+v", s)
	}
	if s := Summarize(nil); s.Events != 0 || s.DistinctLines != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}
