package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"pcmcomp/internal/block"
	"pcmcomp/internal/rng"
)

func streamRoundTrip(t *testing.T, gzipped bool) {
	t.Helper()
	r := rng.New(1)
	events := make([]Event, 400)
	for i := range events {
		events[i].Addr = r.Intn(1 << 20)
		for w := 0; w < 8; w++ {
			events[i].Data.SetWord(w, r.Uint64())
		}
	}
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, gzipped)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := sw.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != len(events) {
		t.Fatalf("count = %d", sw.Count())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	sr, err := NewStreamReader(&buf, gzipped)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	for i := range events {
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.Addr != events[i].Addr || !block.Equal(&got.Data, &events[i].Data) {
			t.Fatalf("event %d mismatch", i)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestStreamRoundTripPlain(t *testing.T) { streamRoundTrip(t, false) }
func TestStreamRoundTripGzip(t *testing.T)  { streamRoundTrip(t, true) }

func TestStreamAddressZero(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(Event{Addr: 0}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(Event{Addr: -1}); err == nil {
		t.Fatal("negative address accepted")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(Event{}); err == nil {
		t.Fatal("append after close accepted")
	}
	sr, err := NewStreamReader(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sr.Next()
	if err != nil || e.Addr != 0 {
		t.Fatalf("addr 0 round trip: %v %v", e.Addr, err)
	}
}

func TestStreamBadMagic(t *testing.T) {
	if _, err := NewStreamReader(strings.NewReader("NOPE...."), false); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := NewStreamWriter(&buf, false)
	_ = sw.Append(Event{Addr: 7})
	_ = sw.Close()
	data := buf.Bytes()
	sr, err := NewStreamReader(bytes.NewReader(data[:len(data)-10]), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncation not detected: %v", err)
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	// Write-back traces are value-structured (zero lines, repeated words);
	// gzip should shrink them a lot.
	r := rng.New(3)
	var plain, zipped bytes.Buffer
	swP, _ := NewStreamWriter(&plain, false)
	swZ, _ := NewStreamWriter(&zipped, true)
	for i := 0; i < 2000; i++ {
		var e Event
		e.Addr = r.Intn(256)
		if i%3 != 0 { // most lines zero or repeated, like real traces
			v := uint64(r.Intn(4))
			for w := 0; w < 8; w++ {
				e.Data.SetWord(w, v)
			}
		} else {
			e.Data.SetWord(0, r.Uint64())
		}
		if err := swP.Append(e); err != nil {
			t.Fatal(err)
		}
		if err := swZ.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	_ = swP.Close()
	_ = swZ.Close()
	if zipped.Len() >= plain.Len()/2 {
		t.Fatalf("gzip saved too little: %d vs %d bytes", zipped.Len(), plain.Len())
	}
}

func TestIsGzipPath(t *testing.T) {
	if !IsGzipPath("a.pcmt.gz") || !IsGzipPath("b.pcmtz") {
		t.Error("gz suffixes not detected")
	}
	if IsGzipPath("a.pcmt") {
		t.Error("plain suffix misdetected")
	}
}
