package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Streaming access to traces: lifetime runs replay traces from memory, but
// generation and inspection of long traces should not require holding every
// event. StreamWriter emits events incrementally; StreamReader yields them
// one at a time. Both transparently handle gzip when the path/flag asks
// for it (long traces compress extremely well — most write-backs share
// value structure).

// StreamWriter writes a trace incrementally. Close finalizes the stream;
// the event count is patched into a trailing footer rather than the
// header, so the writer never needs to know the count in advance.
//
// Stream format: magic "PCMS" | uvarint version | events... | 0xFF marker.
// (Events are uvarint address+1, so address encoding never starts with
// 0xFF's meaning of end-of-stream: uvarint bytes of value>=1 are distinct
// from the marker only because addresses are encoded as addr+1 and the
// marker byte is only read at event boundaries.)
type StreamWriter struct {
	bw     *bufio.Writer
	gz     *gzip.Writer
	count  int
	closed bool
}

const (
	streamMagic   = "PCMS"
	streamVersion = 1
	endMarker     = 0x00 // a zero "address+1" cannot occur
)

// NewStreamWriter starts a stream on w; gzipped selects compression.
func NewStreamWriter(w io.Writer, gzipped bool) (*StreamWriter, error) {
	sw := &StreamWriter{}
	var sink io.Writer = w
	if gzipped {
		sw.gz = gzip.NewWriter(w)
		sink = sw.gz
	}
	sw.bw = bufio.NewWriter(sink)
	if _, err := sw.bw.WriteString(streamMagic); err != nil {
		return nil, fmt.Errorf("trace: write stream magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], streamVersion)
	if _, err := sw.bw.Write(buf[:n]); err != nil {
		return nil, fmt.Errorf("trace: write stream version: %w", err)
	}
	return sw, nil
}

// Append writes one event.
func (sw *StreamWriter) Append(e Event) error {
	if sw.closed {
		return fmt.Errorf("trace: append to closed stream")
	}
	if e.Addr < 0 {
		return fmt.Errorf("trace: negative address %d", e.Addr)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(e.Addr)+1)
	if _, err := sw.bw.Write(buf[:n]); err != nil {
		return err
	}
	if _, err := sw.bw.Write(e.Data[:]); err != nil {
		return err
	}
	sw.count++
	return nil
}

// Count returns the number of events appended so far.
func (sw *StreamWriter) Count() int { return sw.count }

// Close finalizes the stream (end marker + flush + gzip trailer).
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.bw.WriteByte(endMarker); err != nil {
		return err
	}
	if err := sw.bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush stream: %w", err)
	}
	if sw.gz != nil {
		if err := sw.gz.Close(); err != nil {
			return fmt.Errorf("trace: close gzip: %w", err)
		}
	}
	return nil
}

// StreamReader iterates a stream produced by StreamWriter.
type StreamReader struct {
	br *bufio.Reader
	gz *gzip.Reader
}

// NewStreamReader opens a stream; gzipped must match the writer.
func NewStreamReader(r io.Reader, gzipped bool) (*StreamReader, error) {
	sr := &StreamReader{}
	var src io.Reader = r
	if gzipped {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("trace: open gzip: %w", err)
		}
		sr.gz = gz
		src = gz
	}
	sr.br = bufio.NewReader(src)
	var magic [len(streamMagic)]byte
	if _, err := io.ReadFull(sr.br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read stream magic: %w", err)
	}
	if string(magic[:]) != streamMagic {
		return nil, ErrBadMagic
	}
	v, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return nil, fmt.Errorf("trace: read stream version: %w", err)
	}
	if v != streamVersion {
		return nil, fmt.Errorf("trace: unsupported stream version %d", v)
	}
	return sr, nil
}

// Next returns the next event; io.EOF signals a clean end of stream.
func (sr *StreamReader) Next() (Event, error) {
	var e Event
	addr, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return e, fmt.Errorf("trace: read event address: %w", err)
	}
	if addr == endMarker {
		return e, io.EOF
	}
	e.Addr = int(addr - 1)
	if _, err := io.ReadFull(sr.br, e.Data[:]); err != nil {
		return e, fmt.Errorf("trace: read event data: %w", err)
	}
	return e, nil
}

// Close releases the gzip reader, if any.
func (sr *StreamReader) Close() error {
	if sr.gz != nil {
		return sr.gz.Close()
	}
	return nil
}

// IsGzipPath reports whether a trace path requests gzip by suffix.
func IsGzipPath(path string) bool {
	return strings.HasSuffix(path, ".gz") || strings.HasSuffix(path, ".pcmtz")
}
