package tenant

import "sync"

// PushResult classifies what happened to a Push, mirroring the worker
// pool's submit outcomes: admitted, refused because the tenant's queue is
// at depth (transient — back off), or refused because the queue is closed
// for draining (terminal).
type PushResult int

const (
	PushOK PushResult = iota
	PushFull
	PushClosed
)

// Queue is a weighted deficit-round-robin fair queue: each tenant gets
// its own bounded FIFO, and Pop serves tenants in round-robin order,
// granting each visit a deficit of quantum x weight items. A tenant that
// floods its queue only delays itself — every other tenant with work
// still drains at least one item per round — while idle tenants consume
// nothing, so a single busy tenant gets the full capacity (DRR is
// work-conserving). Safe for concurrent use; Pop blocks until an item or
// Close-and-drained.
type Queue[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	perDepth int // max queued items per tenant
	tenants  map[string]*tenantQueue[T]
	active   []string // round order of tenants with queued items
	cur      int      // index into active of the tenant being served
	size     int      // total queued items
}

// tenantQueue is one tenant's FIFO plus its DRR accounting.
type tenantQueue[T any] struct {
	items   []T
	head    int // index of the first queued item (amortized O(1) pops)
	weight  int
	deficit int
	granted bool // deficit already granted for the current visit
}

func (t *tenantQueue[T]) len() int { return len(t.items) - t.head }

// NewQueue builds a queue admitting up to perTenantDepth items per
// tenant (<= 0 defaults to 64).
func NewQueue[T any](perTenantDepth int) *Queue[T] {
	if perTenantDepth <= 0 {
		perTenantDepth = 64
	}
	q := &Queue[T]{perDepth: perTenantDepth, tenants: make(map[string]*tenantQueue[T])}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues one item for a tenant. weight updates the tenant's DRR
// share (clamped to >= 1).
func (q *Queue[T]) Push(tenant string, weight int, item T) PushResult {
	return q.PushBatch(tenant, weight, []T{item})
}

// PushBatch enqueues several items atomically: either every item is
// admitted or none is (PushFull when they would exceed the tenant's
// depth) — the all-or-nothing contract batch submission needs.
func (q *Queue[T]) PushBatch(tenant string, weight int, items []T) PushResult {
	if len(items) == 0 {
		return PushOK
	}
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return PushClosed
	}
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantQueue[T]{}
		q.tenants[tenant] = t
	}
	t.weight = weight
	if t.len()+len(items) > q.perDepth {
		return PushFull
	}
	wasEmpty := t.len() == 0
	t.items = append(t.items, items...)
	if wasEmpty {
		t.deficit = 0
		t.granted = false
		q.active = append(q.active, tenant)
	}
	q.size += len(items)
	if len(items) == 1 {
		q.cond.Signal()
	} else {
		q.cond.Broadcast()
	}
	return PushOK
}

// Pop dequeues the next item under the DRR discipline, blocking until an
// item is available. It reports false only once the queue is closed and
// fully drained — Close lets queued work finish, matching a graceful
// drain.
func (q *Queue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.cond.Wait()
	}
	for {
		t := q.tenants[q.active[q.cur]]
		if !t.granted {
			// First arrival of this round's visit: grant the quantum.
			t.deficit += t.weight
			t.granted = true
		}
		if t.deficit >= 1 && t.len() > 0 {
			item := t.items[t.head]
			var zero T
			t.items[t.head] = zero // release the reference
			t.head++
			if t.head == len(t.items) {
				t.items = t.items[:0]
				t.head = 0
			}
			t.deficit--
			q.size--
			if t.len() == 0 {
				// Empty queues leave the round and forfeit their deficit, so
				// an idle tenant cannot bank credit while away.
				t.deficit = 0
				t.granted = false
				q.active = append(q.active[:q.cur], q.active[q.cur+1:]...)
				if q.cur >= len(q.active) {
					q.cur = 0
				}
			}
			return item, true
		}
		// Visit exhausted: move to the next tenant in the round.
		t.granted = false
		q.cur++
		if q.cur >= len(q.active) {
			q.cur = 0
		}
	}
}

// Close stops admission and wakes every waiter; already-queued items
// still Pop. Idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the total number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Depths returns the per-tenant queue occupancy for every tenant the
// queue has seen (zero entries included), for the /metrics gauges.
func (q *Queue[T]) Depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for name, t := range q.tenants {
		out[name] = t.len()
	}
	return out
}
