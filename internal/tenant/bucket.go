package tenant

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token bucket: it refills at rate tokens per second up to
// burst, and Take spends tokens atomically. Time is passed in rather than
// read, so tests drive the clock and the server stamps one time.Now per
// request.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time // last refill instant (zero until the first Take/Level)
}

// NewBucket builds a bucket born full.
func NewBucket(rate, burst float64) *Bucket {
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// refillLocked advances the bucket to now.
func (b *Bucket) refillLocked(now time.Time) {
	if !b.last.IsZero() && now.After(b.last) {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	}
	if now.After(b.last) {
		b.last = now
	}
}

// Take attempts to spend n tokens at time now. On refusal it returns how
// long until n tokens will have accumulated — the Retry-After hint — and
// leaves the bucket untouched. n larger than burst can never succeed; the
// hint is then the time to fill the whole bucket (callers should reject
// such batches outright via Burst).
func (b *Bucket) Take(now time.Time, n float64) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= n {
		b.tokens -= n
		return 0, true
	}
	need := math.Min(n, b.burst) - b.tokens
	return time.Duration(need / b.rate * float64(time.Second)), false
}

// Level returns the current token count (after refilling to now), for
// the quota gauge.
func (b *Bucket) Level(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}

// Burst returns the bucket capacity.
func (b *Bucket) Burst() float64 { return b.burst }
