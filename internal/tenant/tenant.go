// Package tenant is the multi-tenant front door's admission model: named
// tenants identified by API keys, each with a token-bucket submission
// quota and a fair-queueing weight, plus the deficit-round-robin queue
// the worker pool drains so no tenant can starve another.
//
// The registry is built from specs of the form
//
//	name:key[:rate[:burst[:weight]]]
//
// — comma-separated on a flag, or one per line in a file (# comments and
// blank lines ignored). rate is submissions per second (0 = unlimited),
// burst the bucket depth, weight the DRR share (>= 1). Requests without
// an X-Api-Key header map to the built-in anonymous tenant, so a
// single-user deployment keeps working with no keys configured.
package tenant

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// AnonymousName is the reserved name of the built-in tenant that
// requests without an API key resolve to.
const AnonymousName = "anonymous"

// Tenant is one admission principal: a name, its secret key, a DRR
// weight, and an optional token-bucket quota. Safe for concurrent use —
// the mutable state lives in the bucket.
type Tenant struct {
	// Name labels the tenant in metrics, logs, and job documents.
	Name string
	// Key is the X-Api-Key secret ("" only for the anonymous tenant).
	Key string
	// Weight is the tenant's deficit-round-robin share (>= 1): a tenant
	// with weight 2 drains twice as many queued jobs per round as one
	// with weight 1 when both have work.
	Weight int
	// bucket is the submission quota; nil means unlimited.
	bucket *Bucket
	// byteBucket is the trace-upload byte quota; nil means unlimited.
	// Separate from the submission bucket because the two protect
	// different resources: request admission vs. trace-store ingress.
	byteBucket *Bucket
}

// NewTenant builds a tenant. rate <= 0 disables the quota; burst <= 0
// defaults to max(1, rate); weight < 1 defaults to 1.
func NewTenant(name, key string, rate, burst float64, weight int) *Tenant {
	t := &Tenant{Name: name, Key: key, Weight: weight}
	if t.Weight < 1 {
		t.Weight = 1
	}
	if rate > 0 {
		if burst <= 0 {
			burst = rate
			if burst < 1 {
				burst = 1
			}
		}
		t.bucket = NewBucket(rate, burst)
	}
	return t
}

// Limited reports whether the tenant has a submission quota at all.
func (t *Tenant) Limited() bool { return t.bucket != nil }

// SetByteQuota installs a trace-upload byte quota: rate bytes per second
// refill with a burst-byte bucket depth. rate <= 0 removes the quota;
// burst <= 0 defaults to rate. Call during configuration, before the
// tenant serves requests — the bucket swap itself is not synchronized.
func (t *Tenant) SetByteQuota(rate, burst float64) {
	if rate <= 0 {
		t.byteBucket = nil
		return
	}
	if burst <= 0 {
		burst = rate
	}
	t.byteBucket = NewBucket(rate, burst)
}

// TakeBytes attempts to charge n uploaded bytes against the byte quota at
// time now. It reports whether the upload is admitted; when refused, the
// returned duration is how long until n bytes of budget will be available
// (the Retry-After hint). A tenant without a byte quota always admits.
func (t *Tenant) TakeBytes(now time.Time, n float64) (time.Duration, bool) {
	if t.byteBucket == nil {
		return 0, true
	}
	return t.byteBucket.Take(now, n)
}

// Take attempts to spend n quota tokens at time now. It reports whether
// the submission is admitted; when refused, the returned duration is how
// long until n tokens will be available (the Retry-After hint). An
// unlimited tenant always admits.
func (t *Tenant) Take(now time.Time, n float64) (time.Duration, bool) {
	if t.bucket == nil {
		return 0, true
	}
	return t.bucket.Take(now, n)
}

// Quota returns the tenant's configured rate and burst, and whether a
// quota exists at all — the batch handler refuses batches larger than
// the burst outright (they could never be admitted).
func (t *Tenant) Quota() (rate, burst float64, limited bool) {
	if t.bucket == nil {
		return 0, 0, false
	}
	return t.bucket.rate, t.bucket.burst, true
}

// ByteQuota returns the trace-upload byte quota's rate and burst, and
// whether one exists — an upload larger than the burst could never be
// admitted, so the handler refuses it outright instead of 429-looping.
func (t *Tenant) ByteQuota() (rate, burst float64, limited bool) {
	if t.byteBucket == nil {
		return 0, 0, false
	}
	return t.byteBucket.rate, t.byteBucket.burst, true
}

// TokenLevel returns the current bucket level for the quota gauge, and
// false for unlimited tenants.
func (t *Tenant) TokenLevel(now time.Time) (float64, bool) {
	if t.bucket == nil {
		return 0, false
	}
	return t.bucket.Level(now), true
}

// Registry resolves API keys to tenants. Immutable after construction,
// so lookups need no locking; the per-tenant buckets carry their own.
type Registry struct {
	byKey map[string]*Tenant
	names []string // sorted, for stable metrics iteration
	all   map[string]*Tenant
	anon  *Tenant
}

// NewRegistry builds a registry from the configured tenants plus the
// built-in anonymous tenant (anonRate <= 0 leaves it unlimited, so a
// keyless deployment behaves exactly as before multi-tenancy existed).
// Duplicate names or keys, empty fields, and use of the reserved
// anonymous name are errors.
func NewRegistry(tenants []*Tenant, anonRate, anonBurst float64) (*Registry, error) {
	r := &Registry{
		byKey: make(map[string]*Tenant, len(tenants)),
		all:   make(map[string]*Tenant, len(tenants)+1),
		anon:  NewTenant(AnonymousName, "", anonRate, anonBurst, 1),
	}
	r.all[AnonymousName] = r.anon
	for _, t := range tenants {
		switch {
		case t.Name == "":
			return nil, fmt.Errorf("tenant with key %q has no name", mask(t.Key))
		case t.Name == AnonymousName:
			return nil, fmt.Errorf("tenant name %q is reserved", AnonymousName)
		case t.Key == "":
			return nil, fmt.Errorf("tenant %q has no key", t.Name)
		}
		if _, dup := r.all[t.Name]; dup {
			return nil, fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		if _, dup := r.byKey[t.Key]; dup {
			return nil, fmt.Errorf("duplicate API key %s", mask(t.Key))
		}
		r.byKey[t.Key] = t
		r.all[t.Name] = t
	}
	for name := range r.all {
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	return r, nil
}

// Lookup resolves an X-Api-Key header value. An empty key maps to the
// anonymous tenant; an unknown key reports false (the caller's 401).
func (r *Registry) Lookup(key string) (*Tenant, bool) {
	if key == "" {
		return r.anon, true
	}
	t, ok := r.byKey[key]
	return t, ok
}

// Anonymous returns the built-in keyless tenant.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Tenants returns every tenant (including anonymous) sorted by name, for
// stable metrics rendering.
func (r *Registry) Tenants() []*Tenant {
	out := make([]*Tenant, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.all[name])
	}
	return out
}

// mask hides most of a key in error messages (keys are secrets; errors
// end up in logs).
func mask(key string) string {
	if len(key) <= 4 {
		return "****"
	}
	return key[:2] + "****" + key[len(key)-2:]
}

// ParseSpec parses one name:key[:rate[:burst[:weight]]] spec.
func ParseSpec(spec string) (*Tenant, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 5 {
		return nil, fmt.Errorf("tenant spec %q: want name:key[:rate[:burst[:weight]]]", spec)
	}
	name, key := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	if name == "" || key == "" {
		return nil, fmt.Errorf("tenant spec %q: name and key are required", spec)
	}
	var rate, burst float64
	weight := 1
	var err error
	if len(parts) > 2 && parts[2] != "" {
		if rate, err = strconv.ParseFloat(parts[2], 64); err != nil || rate < 0 {
			return nil, fmt.Errorf("tenant %s: bad rate %q (want submissions/sec >= 0)", name, parts[2])
		}
	}
	if len(parts) > 3 && parts[3] != "" {
		if burst, err = strconv.ParseFloat(parts[3], 64); err != nil || burst < 0 {
			return nil, fmt.Errorf("tenant %s: bad burst %q", name, parts[3])
		}
	}
	if len(parts) > 4 && parts[4] != "" {
		if weight, err = strconv.Atoi(parts[4]); err != nil || weight < 1 {
			return nil, fmt.Errorf("tenant %s: bad weight %q (want integer >= 1)", name, parts[4])
		}
	}
	return NewTenant(name, key, rate, burst, weight), nil
}

// ParseSpecs parses a comma-separated list of tenant specs (the inline
// -api-keys flag form).
func ParseSpecs(specs string) ([]*Tenant, error) {
	var out []*Tenant
	for _, spec := range strings.Split(specs, ",") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		t, err := ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// LoadFile parses a keys file: one spec per line, blank lines and
// #-comments ignored.
func LoadFile(path string) ([]*Tenant, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("api keys: %w", err)
	}
	var out []*Tenant
	for i, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseSpec(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Load resolves the -api-keys flag value: "@path" (or any value without
// a colon) reads a keys file; anything else parses as inline specs.
func Load(value string) ([]*Tenant, error) {
	if value == "" {
		return nil, nil
	}
	if path, isFile := strings.CutPrefix(value, "@"); isFile {
		return LoadFile(path)
	}
	if !strings.Contains(value, ":") {
		return LoadFile(value)
	}
	return ParseSpecs(value)
}
