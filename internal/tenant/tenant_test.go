package tenant

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		name    string
		key     string
		weight  int
		limited bool
	}{
		{spec: "alice:s3cret", name: "alice", key: "s3cret", weight: 1, limited: false},
		{spec: "alice:s3cret:2", name: "alice", key: "s3cret", weight: 1, limited: true},
		{spec: "alice:s3cret:2:10", name: "alice", key: "s3cret", weight: 1, limited: true},
		{spec: "alice:s3cret:2:10:3", name: "alice", key: "s3cret", weight: 3, limited: true},
		{spec: "alice:s3cret:0::5", name: "alice", key: "s3cret", weight: 5, limited: false},
		{spec: " alice : s3cret ", name: "alice", key: "s3cret", weight: 1},
		{spec: "alice", wantErr: true},
		{spec: "", wantErr: true},
		{spec: ":key", wantErr: true},
		{spec: "alice:", wantErr: true},
		{spec: "alice:k:notanumber", wantErr: true},
		{spec: "alice:k:-1", wantErr: true},
		{spec: "alice:k:1:-2", wantErr: true},
		{spec: "alice:k:1:1:0", wantErr: true},
		{spec: "alice:k:1:1:x", wantErr: true},
		{spec: "a:b:1:1:1:extra", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if got.Name != tc.name || got.Key != tc.key || got.Weight != tc.weight || got.Limited() != tc.limited {
			t.Errorf("ParseSpec(%q) = {%s %s w=%d limited=%v}, want {%s %s w=%d limited=%v}",
				tc.spec, got.Name, got.Key, got.Weight, got.Limited(), tc.name, tc.key, tc.weight, tc.limited)
		}
	}
}

func TestParseSpecsAndLoadFile(t *testing.T) {
	ts, err := ParseSpecs("alice:ka:5, bob:kb:1:2:2 ,")
	if err != nil {
		t.Fatalf("ParseSpecs: %v", err)
	}
	if len(ts) != 2 || ts[0].Name != "alice" || ts[1].Name != "bob" || ts[1].Weight != 2 {
		t.Fatalf("ParseSpecs parsed wrong: %+v", ts)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "keys")
	body := "# fleet keys\nalice:ka:5\n\nbob:kb:1:2:2\n"
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(fromFile) != 2 || fromFile[0].Name != "alice" || fromFile[1].Name != "bob" {
		t.Fatalf("LoadFile parsed wrong: %+v", fromFile)
	}

	// Load dispatches between inline specs and @file / bare-path form.
	if ts, err := Load("@" + path); err != nil || len(ts) != 2 {
		t.Fatalf("Load(@path) = %v, %v", ts, err)
	}
	if ts, err := Load(path); err != nil || len(ts) != 2 {
		t.Fatalf("Load(path) = %v, %v", ts, err)
	}
	if ts, err := Load("carol:kc"); err != nil || len(ts) != 1 || ts[0].Name != "carol" {
		t.Fatalf("Load(inline) = %v, %v", ts, err)
	}
	if ts, err := Load(""); err != nil || ts != nil {
		t.Fatalf("Load(empty) = %v, %v", ts, err)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("LoadFile(missing): want error")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("alice:ka\nnope\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("LoadFile(bad line): want error with line number")
	}
}

func TestRegistry(t *testing.T) {
	alice := NewTenant("alice", "ka", 5, 10, 1)
	bob := NewTenant("bob", "kb", 0, 0, 2)
	r, err := NewRegistry([]*Tenant{alice, bob}, 0, 0)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if got, ok := r.Lookup("ka"); !ok || got != alice {
		t.Fatalf("Lookup(ka) = %v, %v", got, ok)
	}
	if got, ok := r.Lookup(""); !ok || got != r.Anonymous() {
		t.Fatalf("Lookup(empty) = %v, %v; want anonymous", got, ok)
	}
	if _, ok := r.Lookup("wrong"); ok {
		t.Fatal("Lookup(wrong): want false")
	}
	if r.Anonymous().Limited() {
		t.Fatal("anonymous tenant should be unlimited by default")
	}
	var names []string
	for _, tn := range r.Tenants() {
		names = append(names, tn.Name)
	}
	if want := []string{"alice", AnonymousName, "bob"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("Tenants() order = %v, want %v", names, want)
	}

	for _, bad := range [][]*Tenant{
		{NewTenant("", "k", 0, 0, 1)},
		{NewTenant(AnonymousName, "k", 0, 0, 1)},
		{NewTenant("x", "", 0, 0, 1)},
		{NewTenant("x", "k1", 0, 0, 1), NewTenant("x", "k2", 0, 0, 1)},
		{NewTenant("x", "k", 0, 0, 1), NewTenant("y", "k", 0, 0, 1)},
	} {
		if _, err := NewRegistry(bad, 0, 0); err == nil {
			t.Errorf("NewRegistry(%+v): want error", bad)
		}
	}

	// A rate-limited anonymous tenant throttles keyless submitters.
	r2, err := NewRegistry(nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Anonymous().Limited() {
		t.Fatal("anonymous tenant should be limited when anonRate > 0")
	}
}

func TestBucketRefillAndHint(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewBucket(2, 4) // 2 tokens/sec, burst 4, born full

	for i := 0; i < 4; i++ {
		if _, ok := b.Take(t0, 1); !ok {
			t.Fatalf("take %d from full burst-4 bucket refused", i)
		}
	}
	hint, ok := b.Take(t0, 1)
	if ok {
		t.Fatal("empty bucket admitted a take")
	}
	if want := 500 * time.Millisecond; hint != want {
		t.Fatalf("retry hint = %v, want %v (1 token at 2/sec)", hint, want)
	}

	// 1.5s later the bucket holds 3 tokens; a 4-token take needs 0.5s more.
	t1 := t0.Add(1500 * time.Millisecond)
	hint, ok = b.Take(t1, 4)
	if ok {
		t.Fatal("3-token bucket admitted a 4-token take")
	}
	if want := 500 * time.Millisecond; hint != want {
		t.Fatalf("retry hint = %v, want %v", hint, want)
	}
	if _, ok := b.Take(t1, 3); !ok {
		t.Fatal("3-token bucket refused a 3-token take")
	}

	// Refill caps at burst; a take larger than burst hints the full fill time.
	t2 := t1.Add(time.Hour)
	if lvl := b.Level(t2); lvl != 4 {
		t.Fatalf("level after long idle = %v, want burst 4", lvl)
	}
	hint, ok = b.Take(t2, 10)
	if ok {
		t.Fatal("take larger than burst admitted")
	}
	if hint != 0 {
		t.Fatalf("full bucket's >burst hint = %v, want 0 (bucket already full)", hint)
	}

	// Time going backwards must not refill or panic.
	if _, ok := b.Take(t2.Add(-time.Hour), 4); !ok {
		t.Fatal("bucket lost its tokens on clock skew")
	}

	// Unlimited tenants always admit.
	unl := NewTenant("u", "k", 0, 0, 1)
	if _, ok := unl.Take(t0, 1000); !ok {
		t.Fatal("unlimited tenant refused")
	}
	if _, limited := unl.TokenLevel(t0); limited {
		t.Fatal("unlimited tenant reported a token level")
	}
	lim := NewTenant("l", "k", 2, 4, 1)
	if lvl, limited := lim.TokenLevel(t0); !limited || lvl != 4 {
		t.Fatalf("limited TokenLevel = %v, %v", lvl, limited)
	}
}

// popAll drains n items, recording the order of tenants served.
func popAll[T any](t *testing.T, q *Queue[T], n int) []T {
	t.Helper()
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		item, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d returned closed", i)
		}
		out = append(out, item)
	}
	return out
}

func TestDRRInterleavesEqualWeights(t *testing.T) {
	q := NewQueue[string](100)
	for i := 0; i < 6; i++ {
		if r := q.Push("a", 1, "a"); r != PushOK {
			t.Fatalf("push a: %v", r)
		}
	}
	for i := 0; i < 3; i++ {
		if r := q.Push("b", 1, "b"); r != PushOK {
			t.Fatalf("push b: %v", r)
		}
	}
	got := popAll(t, q, 9)
	// Equal weights alternate while both have work, then a drains alone.
	want := []string{"a", "b", "a", "b", "a", "b", "a", "a", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DRR order = %v, want %v", got, want)
	}
}

func TestDRRWeightedShare(t *testing.T) {
	q := NewQueue[string](100)
	for i := 0; i < 8; i++ {
		q.Push("heavy", 2, "h")
	}
	for i := 0; i < 4; i++ {
		q.Push("light", 1, "l")
	}
	got := popAll(t, q, 12)
	// Weight 2 drains two per round against light's one.
	want := []string{"h", "h", "l", "h", "h", "l", "h", "h", "l", "h", "h", "l"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("weighted DRR order = %v, want %v", got, want)
	}
}

func TestDRRSingleTenantIsFIFO(t *testing.T) {
	q := NewQueue[int](100)
	for i := 0; i < 20; i++ {
		q.Push("only", 1, i)
	}
	got := popAll(t, q, 20)
	for i, v := range got {
		if v != i {
			t.Fatalf("single-tenant order broken at %d: %v", i, got)
		}
	}
}

func TestDRRDepthBoundAndBatchAtomicity(t *testing.T) {
	q := NewQueue[int](3)
	for i := 0; i < 3; i++ {
		if r := q.Push("a", 1, i); r != PushOK {
			t.Fatalf("push %d: %v", i, r)
		}
	}
	if r := q.Push("a", 1, 99); r != PushFull {
		t.Fatalf("push over depth = %v, want PushFull", r)
	}
	// Other tenants are unaffected by a's full queue.
	if r := q.Push("b", 1, 1); r != PushOK {
		t.Fatalf("push b with a full = %v", r)
	}
	// Batch that would overflow is refused whole — nothing admitted.
	if r := q.PushBatch("b", 1, []int{2, 3, 4}); r != PushFull {
		t.Fatalf("overflowing batch = %v, want PushFull", r)
	}
	if got := q.Depths()["b"]; got != 1 {
		t.Fatalf("b depth after refused batch = %d, want 1", got)
	}
	if r := q.PushBatch("b", 1, []int{2, 3}); r != PushOK {
		t.Fatalf("fitting batch = %v", r)
	}
	if got, want := q.Len(), 6; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestDRRCloseDrainsThenStops(t *testing.T) {
	q := NewQueue[int](10)
	q.Push("a", 1, 1)
	q.Push("a", 1, 2)
	q.Close()
	if r := q.Push("a", 1, 3); r != PushClosed {
		t.Fatalf("push after close = %v, want PushClosed", r)
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("first drained pop = %v, %v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("second drained pop = %v, %v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after drain should report closed")
	}
}

func TestDRRPopBlocksUntilPush(t *testing.T) {
	q := NewQueue[int](10)
	got := make(chan int, 1)
	go func() {
		v, ok := q.Pop()
		if ok {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("a", 1, 42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("blocked pop got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop never woke after Push")
	}
}

func TestDRRConcurrent(t *testing.T) {
	q := NewQueue[int](1000)
	const perTenant = 200
	tenants := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for _, name := range tenants {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				for q.Push(name, 1, i) != PushOK {
					time.Sleep(time.Millisecond)
				}
			}
		}(name)
	}
	var popped sync.WaitGroup
	total := perTenant * len(tenants)
	count := make(chan int, total)
	for w := 0; w < 4; w++ {
		popped.Add(1)
		go func() {
			defer popped.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				count <- v
			}
		}()
	}
	wg.Wait()
	q.Close()
	popped.Wait()
	if len(count) != total {
		t.Fatalf("popped %d items, want %d", len(count), total)
	}
}
