package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("generators with different seeds collided %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 64, 512, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(21)
	child := a.Split()
	// The child stream must be deterministic given the parent seed.
	b := New(21)
	childB := b.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != childB.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnPropertyInRange(t *testing.T) {
	r := New(77)
	f := func(n uint16) bool {
		bound := int(n%4096) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func TestReseedMatchesNew(t *testing.T) {
	fresh := New(42)
	r := *New(99)
	r.NormFloat64() // dirty the Box-Muller spare and the state
	r.Reseed(42)
	for i := 0; i < 100; i++ {
		if got, want := r.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("draw %d: Reseed stream %#x, New stream %#x", i, got, want)
		}
	}
	r.Reseed(42)
	fresh2 := New(42)
	if got, want := r.NormFloat64(), fresh2.NormFloat64(); got != want {
		t.Fatalf("NormFloat64 after Reseed = %v, want %v", got, want)
	}
}

func TestFillMatchesUint64Stream(t *testing.T) {
	a, b := New(7), New(7)
	var buf [193]uint64 // deliberately not a multiple of the batch size
	a.Fill(buf[:])
	for i, v := range buf {
		if want := b.Uint64(); v != want {
			t.Fatalf("Fill[%d] = %#x, want %#x", i, v, want)
		}
	}
	// State must match after the bulk fill, too.
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatalf("post-Fill draw = %#x, want %#x", got, want)
	}
}

func TestBatchMatchesDirectStream(t *testing.T) {
	direct := New(11)
	var backing Rand
	backing.Reseed(11)
	var batch Batch
	batch.Reset(&backing)
	for i := 0; i < 500; i++ {
		if got, want := batch.Uint64(), direct.Uint64(); got != want {
			t.Fatalf("draw %d: batch %#x, direct %#x", i, got, want)
		}
	}
	// Intn must consume the identical draws (Lemire rejection included).
	direct2 := New(13)
	var backing2 Rand
	backing2.Reseed(13)
	var batch2 Batch
	batch2.Reset(&backing2)
	for i := 0; i < 500; i++ {
		n := 1 + i%700 // mix of power-of-two and awkward bounds
		if got, want := batch2.Intn(n), direct2.Intn(n); got != want {
			t.Fatalf("Intn draw %d (n=%d): batch %d, direct %d", i, n, got, want)
		}
	}
}

func BenchmarkFill(b *testing.B) {
	r := New(1)
	var buf [64]uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Fill(buf[:])
	}
}
