// Package rng provides small, fast, deterministic pseudo-random number
// generators for reproducible simulation experiments.
//
// The experiments in this repository (lifetime simulation, Monte-Carlo fault
// injection, synthetic workload generation) must be exactly reproducible
// from a seed, independent of Go version and of math/rand's global state.
// To guarantee that, this package implements SplitMix64 (for seeding and
// cheap stateless streams) and Xoshiro256** (as the main generator), both
// with fixed, documented algorithms.
package rng

import (
	"math"
	"math/bits"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is the recommended seeder for Xoshiro generators.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic pseudo-random number generator based on
// Xoshiro256**. The zero value is NOT valid; construct with New.
type Rand struct {
	s [4]uint64

	// Box-Muller spare for NormFloat64.
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from the given seed via SplitMix64.
// Two generators constructed with the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes the generator in place, exactly as if it had been
// constructed by New(seed). It lets hot loops keep a stack-allocated Rand
// value instead of heap-allocating a fresh generator per stream.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Avoid the (astronomically unlikely, but invalid) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasSpare = false
	r.spare = 0
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, via the Fisher-Yates algorithm.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Split returns a new generator whose stream is independent of r's
// subsequent outputs (seeded from r's next output). Use it to give each
// simulated component its own stream so that adding draws to one component
// does not perturb another.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// Fill fills dst with consecutive generator outputs, identical to calling
// Uint64 len(dst) times. The Xoshiro state lives in registers across the
// loop, so bulk consumers (Monte-Carlo fault injection) pay the state
// load/store once per batch rather than once per draw.
func (r *Rand) Fill(dst []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// batchSize is the number of outputs prefetched per Fill by a Batch.
const batchSize = 64

// Batch serves draws from blocks of outputs prefetched with Fill. Values
// come out in exact generation order, so a Batch-driven consumer sees the
// same stream as one calling the underlying Rand directly (any prefetched
// values left unconsumed when the Batch is dropped are simply discarded).
// The zero value is not valid; call Reset first.
type Batch struct {
	r   *Rand
	buf [batchSize]uint64
	pos int
}

// Reset points the batch at a generator and empties the prefetch buffer.
func (b *Batch) Reset(r *Rand) {
	b.r = r
	b.pos = batchSize
}

// Uint64 returns the next 64 random bits, refilling from the underlying
// generator as needed.
func (b *Batch) Uint64() uint64 {
	if b.pos >= batchSize {
		b.r.Fill(b.buf[:])
		b.pos = 0
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// Intn returns a uniform random int in [0, n), consuming the same draws as
// Rand.Intn would. It panics if n <= 0.
func (b *Batch) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(b.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}
