package rng

import "testing"

// Native fuzzing for the Batch prefetch path: a Batch must serve exactly
// the stream its underlying Rand would emit, draw for draw, no matter how
// many values are consumed (any remainder against the 64-draw prefetch
// block), how the Uint64/Intn call mix interleaves, or what Intn bounds
// (and hence Lemire rejection retries) the consumer asks for. The
// Monte-Carlo goldens pin this property for one fixed workload; the fuzzer
// pins it for arbitrary ones.

func FuzzBatchMatchesSequential(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3})
	f.Add(uint64(99), make([]byte, 200))       // > 3 prefetch blocks of Uint64s
	f.Add(uint64(7), []byte{255, 1, 254, 128}) // mixed ops, odd bounds
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		seq := New(seed)
		batched := New(seed)
		var b Batch
		b.Reset(batched)
		for i, op := range ops {
			if op%2 == 0 {
				want, got := seq.Uint64(), b.Uint64()
				if want != got {
					t.Fatalf("op %d: Uint64 = %#x, sequential %#x", i, got, want)
				}
				continue
			}
			// Odd op bytes draw a bounded int; the bound sweeps 1..512 so
			// both the power-of-two (rejection-free) and the skewed Lemire
			// threshold paths are exercised.
			n := 1 + int(op)*2
			want, got := seq.Intn(n), b.Intn(n)
			if want != got {
				t.Fatalf("op %d: Intn(%d) = %d, sequential %d", i, n, got, want)
			}
		}
		// The batch must leave the shared algorithmic position intact: a
		// fresh consumer reading past whatever the Batch prefetched still
		// sees the sequential stream.
		if want, got := seq.Uint64(), b.Uint64(); want != got {
			t.Fatalf("post-run draw = %#x, sequential %#x", got, want)
		}
	})
}
